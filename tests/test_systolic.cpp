// Tests for the cycle-level systolic simulation and stall models,
// including the cross-verification against Equation 7.
#include <gtest/gtest.h>

#include "core/analytical_model.hpp"
#include "systolic/cycle_sim.hpp"
#include "systolic/stall_model.hpp"
#include "util/rng.hpp"

namespace drift::systolic {
namespace {

TensorI32 random_int_tensor(Rng& rng, Shape shape, int lim) {
  TensorI32 t(std::move(shape));
  for (auto& v : t.data()) {
    v = static_cast<std::int32_t>(rng.uniform_int(-lim, lim));
  }
  return t;
}

TEST(CycleSim, TileOutputMatchesMatmul) {
  Rng rng(151);
  const TensorI32 a = random_int_tensor(rng, Shape{6, 4}, 20);
  const TensorI32 w = random_int_tensor(rng, Shape{4, 5}, 20);
  const std::vector<std::int64_t> costs(6, 1);
  const SimResult r = simulate_tile(a, w, costs);
  for (std::int64_t m = 0; m < 6; ++m) {
    for (std::int64_t n = 0; n < 5; ++n) {
      std::int64_t acc = 0;
      for (std::int64_t k = 0; k < 4; ++k) acc += a(m, k) * w(k, n);
      EXPECT_EQ(r.output(m, n), acc);
    }
  }
}

TEST(CycleSim, UniformTileMatchesEquationSevenTerm) {
  // One tile: cycles = T_pre + T_exe = R + (M + R + C - 2).
  Rng rng(157);
  const std::int64_t M = 17, R = 5, C = 9;
  const TensorI32 a = random_int_tensor(rng, Shape{M, R}, 10);
  const TensorI32 w = random_int_tensor(rng, Shape{R, C}, 10);
  const std::vector<std::int64_t> costs(static_cast<std::size_t>(M), 1);
  const SimResult r = simulate_tile(a, w, costs);
  EXPECT_EQ(r.preload_cycles, R);
  EXPECT_EQ(r.cycles, R + M + R + C - 2);
  EXPECT_EQ(r.stall_cycles, 0);
}

TEST(CycleSim, GemmCyclesMatchScalarAnalyticalForm) {
  // Tiled GEMM on a scalar R x C array:
  // tiles = ceil(K/R)*ceil(N/C), each costing 2R + M + C - 2.
  Rng rng(163);
  const std::int64_t M = 11, K = 14, N = 10, R = 4, C = 3;
  const TensorI32 a = random_int_tensor(rng, Shape{M, K}, 8);
  const TensorI32 w = random_int_tensor(rng, Shape{K, N}, 8);
  const SimResult r = simulate_gemm(a, w, {R, C});
  const std::int64_t tiles = ((K + R - 1) / R) * ((N + C - 1) / C);
  EXPECT_EQ(r.cycles, tiles * (2 * R + M + C - 2));
}

TEST(CycleSim, GemmOutputCorrectUnderTiling) {
  Rng rng(167);
  const TensorI32 a = random_int_tensor(rng, Shape{7, 13}, 6);
  const TensorI32 w = random_int_tensor(rng, Shape{13, 9}, 6);
  const SimResult r = simulate_gemm(a, w, {4, 4});
  for (std::int64_t m = 0; m < 7; ++m) {
    for (std::int64_t n = 0; n < 9; ++n) {
      std::int64_t acc = 0;
      for (std::int64_t k = 0; k < 13; ++k) acc += a(m, k) * w(k, n);
      EXPECT_EQ(r.output(m, n), acc);
    }
  }
}

TEST(CycleSim, UniformNonUnitCostTileIsStallFree) {
  // Regression: the stall accounting used to subtract a no-stall bound
  // of `stages - last_cost` instead of `(stages - 1) * last_cost`, so a
  // stream of all-cost-2 rows — which throttles nothing — was reported
  // as stalled.  It must agree with the stall model exactly.
  Rng rng(179);
  const std::int64_t M = 12, R = 4, C = 5;
  const TensorI32 a = random_int_tensor(rng, Shape{M, R}, 5);
  const TensorI32 w = random_int_tensor(rng, Shape{R, C}, 5);
  for (std::int64_t k = 1; k <= 4; ++k) {
    const std::vector<std::int64_t> costs(static_cast<std::size_t>(M), k);
    const SimResult r = simulate_tile(a, w, costs);
    EXPECT_EQ(r.stall_cycles, 0) << "uniform cost " << k;
    EXPECT_EQ(r.cycles, R + M * k + (R + C - 2) * k) << "uniform cost " << k;
  }
}

TEST(CycleSim, TileStallAgreesWithStallModel) {
  Rng rng(181);
  const std::int64_t M = 24, R = 5, C = 7;
  const TensorI32 a = random_int_tensor(rng, Shape{M, R}, 5);
  const TensorI32 w = random_int_tensor(rng, Shape{R, C}, 5);
  std::vector<std::int64_t> costs(static_cast<std::size_t>(M), 1);
  for (std::size_t i = 0; i < costs.size(); i += 3) costs[i] = 2;
  costs[5] = 4;
  const SimResult r = simulate_tile(a, w, costs);
  EXPECT_EQ(r.stall_cycles, pipeline_stall_cycles(costs, R + C - 1));
}

TEST(CycleSim, MixedCostsIncurStalls) {
  Rng rng(173);
  const std::int64_t M = 32, R = 6, C = 6;
  const TensorI32 a = random_int_tensor(rng, Shape{M, R}, 5);
  const TensorI32 w = random_int_tensor(rng, Shape{R, C}, 5);
  // A slow row early in the stream throttles everything behind it.
  std::vector<std::int64_t> costs(static_cast<std::size_t>(M), 1);
  costs[2] = 2;
  const SimResult r = simulate_tile(a, w, costs);
  EXPECT_GT(r.stall_cycles, 0);
}

TEST(Pipeline, UniformReducesToFillPlusStream) {
  const std::vector<std::int64_t> costs(100, 1);
  EXPECT_EQ(pipeline_exit_cycles(costs, 10), 100 + 10 - 1);
  EXPECT_EQ(pipeline_stall_cycles(costs, 10), 0);
}

TEST(Pipeline, AllSlowRowsScaleLinearly) {
  const std::vector<std::int64_t> costs(50, 2);
  // Last row exits at sum + (stages-1)*cost: no interference.
  EXPECT_EQ(pipeline_exit_cycles(costs, 8), 100 + 7 * 2);
  EXPECT_EQ(pipeline_stall_cycles(costs, 8), 0);
}

TEST(Pipeline, SlowRowDelaysDrainOfFollowers) {
  std::vector<std::int64_t> costs(20, 1);
  costs[0] = 3;
  const std::int64_t stages = 6;
  const std::int64_t exit = pipeline_exit_cycles(costs, stages);
  // Followers queue behind the slow head: it exits at 3*stages, then
  // the remaining 19 unit rows drain one per cycle.
  EXPECT_EQ(exit, 3 * stages + 19);
  EXPECT_GT(pipeline_stall_cycles(costs, stages), 0);
}

TEST(Pipeline, MonotoneInCosts) {
  Rng rng(179);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::int64_t> base(64);
    for (auto& c : base) c = rng.uniform_int(1, 3);
    std::vector<std::int64_t> worse = base;
    worse[static_cast<std::size_t>(rng.uniform_int(0, 63))] += 1;
    EXPECT_GE(pipeline_exit_cycles(worse, 12),
              pipeline_exit_cycles(base, 12));
  }
}

TEST(RunSwitching, UniformStreamsHaveNoSwitches) {
  const std::vector<bool> all_low(100, true);
  const auto r = run_switching_exe_cycles(all_low, 1, 2, 50);
  EXPECT_EQ(r.switches, 0);
  EXPECT_EQ(r.exe_cycles, 100);
  EXPECT_FALSE(r.fell_back_to_high);
}

TEST(RunSwitching, ContiguousRunsPayPerTransition) {
  // 50 low, 50 high: one switch.
  std::vector<bool> pattern(100, true);
  for (int i = 50; i < 100; ++i) pattern[static_cast<std::size_t>(i)] = false;
  const auto r = run_switching_exe_cycles(pattern, 1, 2, 10);
  EXPECT_EQ(r.switches, 1);
  EXPECT_EQ(r.exe_cycles, 50 + 100 + 10);
  EXPECT_EQ(r.stall_cycles, 10);
}

TEST(RunSwitching, FineInterleavingFallsBackToHigh) {
  // Alternating pattern: switch costs would dominate, so the
  // controller runs everything at high precision (the DRQ-on-ViT
  // mechanism).
  std::vector<bool> pattern(100);
  for (int i = 0; i < 100; ++i) pattern[static_cast<std::size_t>(i)] = i % 2;
  const auto r = run_switching_exe_cycles(pattern, 1, 2, 55);
  EXPECT_TRUE(r.fell_back_to_high);
  EXPECT_EQ(r.exe_cycles, 200);
}

TEST(RunSwitching, FallbackNeverWorseThanMixed) {
  Rng rng(181);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<bool> pattern(128);
    const double p = rng.uniform();
    for (auto&& b : pattern) b = rng.bernoulli(p);
    const auto r = run_switching_exe_cycles(pattern, 1, 2, 55);
    EXPECT_LE(r.exe_cycles, r.mixed_cycles);
    EXPECT_LE(r.exe_cycles, static_cast<std::int64_t>(pattern.size()) * 2);
  }
}

TEST(CostsFromPattern, MapsBools) {
  const std::vector<bool> pattern = {true, false, true};
  const auto costs = costs_from_pattern(pattern, 1, 2);
  EXPECT_EQ(costs, (std::vector<std::int64_t>{1, 2, 1}));
}

class PipelinePropertySweep : public ::testing::TestWithParam<int> {};

TEST_P(PipelinePropertySweep, ExitNeverBelowEitherLowerBound) {
  // Property: exit >= sum of costs (stage-0 occupancy) and
  // exit >= max_cost * stages (slowest row transit).
  Rng rng(191 + GetParam());
  std::vector<std::int64_t> costs(static_cast<std::size_t>(
      rng.uniform_int(1, 200)));
  std::int64_t sum = 0, peak = 0;
  for (auto& c : costs) {
    c = rng.uniform_int(1, 4);
    sum += c;
    peak = std::max(peak, c);
  }
  const std::int64_t stages = rng.uniform_int(1, 40);
  const std::int64_t exit = pipeline_exit_cycles(costs, stages);
  EXPECT_GE(exit, sum);
  EXPECT_GE(exit, peak * stages);
}

INSTANTIATE_TEST_SUITE_P(Trials, PipelinePropertySweep,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace drift::systolic
