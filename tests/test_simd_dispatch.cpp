// Unit tests for the SIMD kernel dispatch layer: backend selection,
// the force-scalar override, and the overflow bound the vector dot
// kernels rely on.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>

#include "nn/simd/kernel_dispatch.hpp"
#include "nn/simd/pack.hpp"

namespace drift::nn::simd {
namespace {

struct ForceScalarGuard {
  bool prev = force_scalar();
  ~ForceScalarGuard() { set_force_scalar(prev); }
};

TEST(SimdDispatch, ForceScalarPinsTheScalarTable) {
  ForceScalarGuard guard;
  set_force_scalar(true);
  EXPECT_TRUE(force_scalar());
  EXPECT_EQ(active_backend(), Backend::kScalar);
  EXPECT_STREQ(active().name, "scalar");
}

TEST(SimdDispatch, BackendEnumMatchesTableName) {
  ForceScalarGuard guard;
  set_force_scalar(false);
  const std::string name = active().name;
  switch (active_backend()) {
    case Backend::kScalar:
      EXPECT_EQ(name, "scalar");
      break;
    case Backend::kAvx2:
      EXPECT_EQ(name, "avx2");
      break;
    case Backend::kNeon:
      EXPECT_EQ(name, "neon");
      break;
  }
}

TEST(SimdDispatch, NativeBackendMatchesDetectedFeatures) {
  ForceScalarGuard guard;
  set_force_scalar(false);
  const CpuFeatures features = detect_cpu_features();
  // The dispatcher may only pick a vector backend the CPU reports.
  if (active_backend() == Backend::kAvx2) EXPECT_TRUE(features.avx2);
  if (active_backend() == Backend::kNeon) EXPECT_TRUE(features.neon);
}

TEST(SimdDispatch, TablesAreFullyPopulated) {
  ForceScalarGuard guard;
  for (const bool force : {true, false}) {
    set_force_scalar(force);
    const KernelTable& kt = active();
    EXPECT_NE(kt.name, nullptr);
    EXPECT_NE(kt.dot_s8s8, nullptr);
    EXPECT_NE(kt.dot_s8s4, nullptr);
    EXPECT_NE(kt.dot_s4s4, nullptr);
    EXPECT_NE(kt.quantize_convert_row, nullptr);
    EXPECT_NE(kt.reduce_stats, nullptr);
  }
}

TEST(SimdDispatch, MaxDotLengthRespectsLaneAccumulatorRange) {
  // The widest vector layout spreads a length-n s8s8 dot over 8 int32
  // lanes with two products pre-added per madd step, so a lane absorbs
  // at most n/4 addends of at most 127*127 — the bound must keep that
  // under INT32_MAX with margin.
  const std::int64_t worst_lane =
      (kMaxDotLength / 4) * std::int64_t{127} * std::int64_t{127};
  EXPECT_LT(worst_lane, std::int64_t{INT32_MAX});
}

TEST(SimdDispatch, PackedSizeRoundsUp) {
  EXPECT_EQ(packed_size(0), 0);
  EXPECT_EQ(packed_size(1), 1);
  EXPECT_EQ(packed_size(2), 1);
  EXPECT_EQ(packed_size(7), 4);
  EXPECT_EQ(packed_size(8), 4);
}

}  // namespace
}  // namespace drift::nn::simd
