// Tests for the Hessian-aware threshold search utilities.
#include <gtest/gtest.h>

#include <cmath>

#include "core/hessian.hpp"
#include "util/assert.hpp"

namespace drift::core {
namespace {

/// Quadratic loss with a known Hessian diag(h): L = 1/2 sum h_i x_i^2.
LossFn quadratic_loss(std::vector<double> h) {
  return [h](std::span<const float> x) {
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      acc += 0.5 * h[i] * static_cast<double>(x[i]) * x[i];
    }
    return acc;
  };
}

TEST(Curvature, ExactOnQuadratic) {
  const auto loss = quadratic_loss({2.0, 4.0, 6.0});
  const std::vector<float> x = {1.0f, -1.0f, 0.5f};
  const std::vector<float> d = {1.0f, 0.0f, 0.0f};
  // d^T H d = 2.0 exactly for a quadratic, any step.
  EXPECT_NEAR(curvature_along(loss, x, d, 0.5), 2.0, 1e-6);
  const std::vector<float> d2 = {1.0f, 1.0f, 1.0f};
  EXPECT_NEAR(curvature_along(loss, x, d2, 0.25), 12.0, 1e-5);
}

TEST(Curvature, SizeMismatchThrows) {
  const auto loss = quadratic_loss({1.0});
  const std::vector<float> x = {1.0f};
  const std::vector<float> d = {1.0f, 2.0f};
  EXPECT_THROW(curvature_along(loss, x, d), drift::check_error);
}

TEST(HutchinsonTrace, RecoversQuadraticTrace) {
  const auto loss = quadratic_loss({1.0, 2.0, 3.0, 4.0});
  const std::vector<float> x = {0.2f, -0.3f, 0.1f, 0.5f};
  Rng rng(89);
  const double trace = hessian_trace_estimate(loss, x, rng, 64, 0.1);
  // For a diagonal quadratic, v^T H v = sum h_i v_i^2 = trace exactly
  // when v is Rademacher, so even few probes are exact up to fd error.
  EXPECT_NEAR(trace, 10.0, 1e-3);
}

TEST(ThresholdSearch, PicksSmallestDeltaWithinBudget) {
  // Perturbation magnitude shrinks as δ grows (stricter -> fewer low
  // sub-tensors -> smaller error), matching the algorithm's semantics.
  const auto loss = quadratic_loss({1.0, 1.0});
  const std::vector<float> x = {0.0f, 0.0f};
  auto render_at = [&](double delta) {
    const float eps = static_cast<float>(1.0 / (1.0 + delta));
    return std::vector<float>{eps, eps};
  };
  auto low_at = [](double delta) { return 1.0 / (1.0 + delta); };
  const std::vector<double> grid = {0.1, 1.0, 10.0, 100.0};
  // ΔL(δ) = (1/(1+δ))^2; budget 0.05 -> need 1/(1+δ) <= ~0.2236 ->
  // δ >= 3.47 -> first qualifying grid point is 10.
  const auto result = select_threshold_hessian_aware(
      loss, x, render_at, low_at, grid, 0.05);
  EXPECT_TRUE(result.within_budget);
  EXPECT_DOUBLE_EQ(result.chosen_delta, 10.0);
  ASSERT_EQ(result.candidates.size(), 4u);
  EXPECT_GT(result.candidates[0].predicted_loss_increase,
            result.candidates[3].predicted_loss_increase);
}

TEST(ThresholdSearch, FallsBackToLargestWhenNothingFits) {
  const auto loss = quadratic_loss({100.0});
  const std::vector<float> x = {0.0f};
  auto render_at = [](double) { return std::vector<float>{1.0f}; };
  auto low_at = [](double) { return 0.5; };
  const std::vector<double> grid = {0.1, 1.0};
  const auto result = select_threshold_hessian_aware(
      loss, x, render_at, low_at, grid, 1e-6);
  EXPECT_FALSE(result.within_budget);
  EXPECT_DOUBLE_EQ(result.chosen_delta, 1.0);
}

TEST(ThresholdSearch, UnsortedGridThrows) {
  const auto loss = quadratic_loss({1.0});
  const std::vector<float> x = {0.0f};
  auto render_at = [](double) { return std::vector<float>{0.0f}; };
  auto low_at = [](double) { return 0.0; };
  const std::vector<double> grid = {1.0, 0.1};
  EXPECT_THROW(select_threshold_hessian_aware(loss, x, render_at, low_at,
                                              grid, 1.0),
               drift::check_error);
}

TEST(ThresholdSearch, ConcaveDirectionTreatedAsZeroImpact) {
  // A locally concave loss must not produce negative predictions.
  LossFn loss = [](std::span<const float> x) {
    double acc = 0.0;
    for (float v : x) acc -= 0.5 * static_cast<double>(v) * v;
    return acc;
  };
  const std::vector<float> x = {0.0f};
  auto render_at = [](double) { return std::vector<float>{1.0f}; };
  auto low_at = [](double) { return 1.0; };
  const std::vector<double> grid = {1.0};
  const auto result = select_threshold_hessian_aware(
      loss, x, render_at, low_at, grid, 0.1);
  EXPECT_DOUBLE_EQ(result.candidates[0].predicted_loss_increase, 0.0);
  EXPECT_TRUE(result.within_budget);
}

}  // namespace
}  // namespace drift::core
