// Tests for src/util: checks, CSV, tables, RNG.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/assert.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace drift {
namespace {

TEST(Check, PassingConditionIsSilent) {
  EXPECT_NO_THROW(DRIFT_CHECK(1 + 1 == 2));
}

TEST(Check, FailingConditionThrowsCheckError) {
  EXPECT_THROW(DRIFT_CHECK(false, "boom"), check_error);
}

TEST(Check, MessageContainsExpressionAndText) {
  try {
    DRIFT_CHECK(2 < 1, "custom context");
    FAIL() << "expected throw";
  } catch (const check_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("custom context"), std::string::npos);
  }
}

TEST(Check, IndexMacroAcceptsValidIndex) {
  EXPECT_NO_THROW(DRIFT_CHECK_INDEX(0, 3));
  EXPECT_NO_THROW(DRIFT_CHECK_INDEX(2, 3));
}

TEST(Check, IndexMacroRejectsOutOfRange) {
  EXPECT_THROW(DRIFT_CHECK_INDEX(3, 3), check_error);
  EXPECT_THROW(DRIFT_CHECK_INDEX(-1, 3), check_error);
}

TEST(Check, EqMacroPassesOnEqualValues) {
  EXPECT_NO_THROW(DRIFT_CHECK_EQ(2 + 2, 4));
  EXPECT_NO_THROW(DRIFT_CHECK_EQ(std::string("ab"), "ab", "with message"));
}

TEST(Check, EqMacroMessageShowsBothOperands) {
  const int lhs = 3;
  const int rhs = 5;
  try {
    DRIFT_CHECK_EQ(lhs, rhs, "operand context");
    FAIL() << "expected throw";
  } catch (const check_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("DRIFT_CHECK_EQ failed"), std::string::npos);
    EXPECT_NE(what.find("lhs == rhs"), std::string::npos);
    EXPECT_NE(what.find("(3 vs 5)"), std::string::npos);
    EXPECT_NE(what.find("operand context"), std::string::npos);
  }
}

TEST(Check, LeMacroAcceptsBoundary) {
  EXPECT_NO_THROW(DRIFT_CHECK_LE(4, 4));
  EXPECT_NO_THROW(DRIFT_CHECK_LE(3, 4, "with message"));
}

TEST(Check, LeMacroMessageShowsBothOperands) {
  try {
    DRIFT_CHECK_LE(9, 2);
    FAIL() << "expected throw";
  } catch (const check_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("DRIFT_CHECK_LE failed"), std::string::npos);
    EXPECT_NE(what.find("(9 vs 2)"), std::string::npos);
  }
}

TEST(Check, OpMacroEvaluatesOperandsOnce) {
  int calls = 0;
  const auto bump = [&calls] { return ++calls; };
  DRIFT_CHECK_EQ(bump(), 1, "single evaluation");
  EXPECT_EQ(calls, 1);
}

namespace {
struct Unprintable {
  bool operator==(const Unprintable&) const { return false; }
};
}  // namespace

TEST(Check, UnprintableOperandsDegradeGracefully) {
  try {
    DRIFT_CHECK_EQ(Unprintable{}, Unprintable{});
    FAIL() << "expected throw";
  } catch (const check_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("<unprintable>"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, ForkStreamsAreIndependentAndDeterministic) {
  Rng base(7);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  Rng f1_again = Rng(7).fork(1);
  EXPECT_DOUBLE_EQ(f1.uniform(), f1_again.uniform());
  EXPECT_NE(f1.uniform(), f2.uniform());
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 5.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, LaplaceSampleMomentsMatchTheory) {
  Rng rng(11);
  const double b = 1.7;
  double sum = 0.0, sum_abs = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.laplace(b);
    sum += x;
    sum_abs += std::abs(x);
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);       // zero mean
  EXPECT_NEAR(sum_abs / n, b, b * 0.02); // E|X| = b
}

TEST(Rng, RademacherIsBalanced) {
  Rng rng(5);
  int plus = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.rademacher();
    EXPECT_TRUE(v == 1.0 || v == -1.0);
    if (v > 0) ++plus;
  }
  EXPECT_NEAR(static_cast<double>(plus) / n, 0.5, 0.03);
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = "test_csv_out.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.row({"1", "2"});
    csv.row_values(3.5, "x");
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3.5,x");
  std::remove(path.c_str());
}

TEST(Csv, EscapesCommasAndQuotes) {
  const std::string path = "test_csv_escape.csv";
  {
    CsvWriter csv(path, {"v"});
    csv.row({"hello, world"});
    csv.row({"say \"hi\""});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // header
  std::getline(in, line);
  EXPECT_EQ(line, "\"hello, world\"");
  std::getline(in, line);
  EXPECT_EQ(line, "\"say \"\"hi\"\"\"");
  std::remove(path.c_str());
}

TEST(Csv, RowWidthMismatchThrows) {
  const std::string path = "test_csv_width.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.row({"only-one"}), check_error);
  std::remove(path.c_str());
}

TEST(Table, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2.5"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::pct(0.824, 1), "82.4%");
  EXPECT_EQ(TextTable::ratio(2.85), "2.85x");
}

TEST(Table, RowWidthMismatchThrows) {
  TextTable t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), check_error);
}

}  // namespace
}  // namespace drift
