// drift_report CLI tests, driven in-process through run_cli() so every
// assertion covers the exact binary behavior (exit codes, stdout
// bytes).
//
// Three groups:
//   1. Byte-exact goldens: `summarize` text and canonical-JSON output
//      on the checked-in fixture artifact must match
//      tests/report/golden/.  Regenerate after an intentional change:
//        DRIFT_REPORT_UPDATE_GOLDEN=1 ./build/tests/report/drift_report_tests
//   2. Exit-code matrices for diff / ratchet on fixture pairs,
//      including the two acceptance checks: two fixed-seed runs of the
//      real pipeline diff clean (exit 0), and a doctored 2x-slowdown
//      BENCH_kernels.json fails the ratchet (exit 1).
//   3. Graceful degradation: an empty (DRIFT_OBS_OFF-style) artifact
//      summarizes with exit 0 and an explicit "no run data" note.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli.hpp"
#include "core/quantizer.hpp"
#include "core/scheduler.hpp"
#include "core/selector.hpp"
#include "obs/metrics.hpp"
#include "systolic/cycle_sim.hpp"
#include "tensor/subtensor.hpp"
#include "util/rng.hpp"

namespace drift::report {
namespace {

std::string fixture(const std::string& name) {
  return std::string(DRIFT_REPORT_FIXTURE_DIR) + "/" + name;
}

std::string golden_path(const std::string& name) {
  return std::string(DRIFT_REPORT_GOLDEN_DIR) + "/" + name;
}

std::string read_file_or_empty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Runs the CLI and returns the exit code; `out`/`err` are cleared
/// first so one test can issue several invocations.
int run(const std::vector<std::string>& args, std::string& out,
        std::string& err) {
  out.clear();
  err.clear();
  return run_cli(args, out, err);
}

// ---------------------------------------------------------------------------
// Goldens.

void check_golden(const std::string& name, const std::string& produced) {
  const std::string path = golden_path(name);
  if (std::getenv("DRIFT_REPORT_UPDATE_GOLDEN") != nullptr) {
    ASSERT_TRUE(obs::write_file(path, produced));
    GTEST_SKIP() << "golden regenerated at " << path;
  }
  const std::string golden = read_file_or_empty(path);
  ASSERT_FALSE(golden.empty())
      << "missing golden " << path
      << " — regenerate with DRIFT_REPORT_UPDATE_GOLDEN=1";
  EXPECT_EQ(produced, golden)
      << "drift_report output drifted from the golden; if intentional, "
         "regenerate with DRIFT_REPORT_UPDATE_GOLDEN=1";
}

TEST(ReportGolden, SummarizeTextMatchesGolden) {
  std::string out, err;
  ASSERT_EQ(run({"summarize", fixture("run_a.json"), "--trace",
                 fixture("trace_a.json")},
                out, err),
            0)
      << err;
  check_golden("summary_a.txt", out);
}

TEST(ReportGolden, SummarizeJsonMatchesGolden) {
  std::string out, err;
  ASSERT_EQ(run({"summarize", fixture("run_a.json"), "--trace",
                 fixture("trace_a.json"), "--json"},
                out, err),
            0)
      << err;
  check_golden("summary_a.json", out);
}

// run_serve.json is a fixed-seed serving artifact (the tests/serve
// golden scrape) with a serving_sweep array attached, so these goldens
// cover both the per-request SLO section and the sweep table.
TEST(ReportGolden, SummarizeServingTextMatchesGolden) {
  std::string out, err;
  ASSERT_EQ(run({"summarize", fixture("run_serve.json")}, out, err), 0)
      << err;
  check_golden("summary_serve.txt", out);
}

TEST(ReportGolden, SummarizeServingJsonMatchesGolden) {
  std::string out, err;
  ASSERT_EQ(run({"summarize", fixture("run_serve.json"), "--json"}, out,
                err),
            0)
      << err;
  check_golden("summary_serve.json", out);
}

// ---------------------------------------------------------------------------
// diff exit codes.

TEST(ReportDiff, IdenticalRunsExitZero) {
  std::string out, err;
  EXPECT_EQ(run({"diff", fixture("run_a.json"), fixture("run_a.json")}, out,
                err),
            0)
      << out << err;
}

TEST(ReportDiff, NoiseOnlyDifferencesAreIgnoredByDefault) {
  // run_b differs from run_a only in meta.git_sha and the wall-clock
  // thread_pool.queue_wait_us histogram — exactly the leaves the
  // built-in "meta." and "_us" ignore rules exist for.
  std::string out, err;
  EXPECT_EQ(run({"diff", fixture("run_a.json"), fixture("run_b.json")}, out,
                err),
            0)
      << out << err;
}

TEST(ReportDiff, DivergentCountersExitOne) {
  std::string out, err;
  EXPECT_EQ(run({"diff", fixture("run_a.json"), fixture("run_divergent.json")},
                out, err),
            1);
  EXPECT_NE(out.find("counters.sim.cycles"), std::string::npos) << out;
}

TEST(ReportDiff, ToleranceFileCanAbsorbDivergence) {
  std::string out, err;
  EXPECT_EQ(run({"diff", fixture("run_a.json"), fixture("run_divergent.json"),
                 "--tolerances", fixture("tolerances.json")},
                out, err),
            0)
      << out << err;
}

TEST(ReportDiff, MissingFileExitTwo) {
  std::string out, err;
  EXPECT_EQ(run({"diff", fixture("run_a.json"), fixture("no_such_file.json")},
                out, err),
            2);
  EXPECT_FALSE(err.empty());
}

TEST(ReportDiff, MalformedJsonExitTwo) {
  std::string out, err;
  EXPECT_EQ(run({"diff", fixture("run_a.json"), fixture("malformed.json")},
                out, err),
            2);
  EXPECT_FALSE(err.empty());
}

// ---------------------------------------------------------------------------
// ratchet exit codes.

TEST(ReportRatchet, BaselineAgainstItselfExitZero) {
  std::string out, err;
  EXPECT_EQ(run({"ratchet", fixture("bench_base.json"), "--baseline",
                 fixture("bench_base.json")},
                out, err),
            0)
      << out << err;
}

TEST(ReportRatchet, DoubledSlowdownExitOne) {
  // Acceptance criterion: bench_slow.json is bench_base.json with the
  // 4-thread gemm_lowp kernel doctored to half the ops/s (2x slowdown),
  // which must trip the default 1.5x gate.
  std::string out, err;
  EXPECT_EQ(run({"ratchet", fixture("bench_slow.json"), "--baseline",
                 fixture("bench_base.json")},
                out, err),
            1);
  EXPECT_NE(out.find("gemm_lowp"), std::string::npos) << out;
}

TEST(ReportRatchet, GenerousGateAbsorbsSlowdown) {
  std::string out, err;
  EXPECT_EQ(run({"ratchet", fixture("bench_slow.json"), "--baseline",
                 fixture("bench_base.json"), "--max-slowdown", "4.0"},
                out, err),
            0)
      << out << err;
}

TEST(ReportRatchet, KernelMissingFromRunFailsUntrackedOnlyWarns) {
  // bench_missing drops a baseline kernel (fail: a silently shrunk
  // corpus must not pass) and adds one the baseline has never seen
  // (warn-only).
  std::string out, err;
  EXPECT_EQ(run({"ratchet", fixture("bench_missing.json"), "--baseline",
                 fixture("bench_base.json")},
                out, err),
            1);
  EXPECT_NE(out.find("MISSING"), std::string::npos) << out;
  EXPECT_NE(out.find("unpack_c"), std::string::npos) << out;
}

TEST(ReportRatchet, UntrackedKernelAloneExitZero) {
  // Running the full corpus against a baseline that only knows a
  // subset must pass: new kernels are untracked warnings, not failures.
  std::string out, err;
  EXPECT_EQ(run({"ratchet", fixture("bench_base.json"), "--baseline",
                 fixture("bench_missing.json")},
                out, err),
            1)
      << "bench_missing as baseline also drops a kernel, so this "
         "direction still fails on unpack_c";
  EXPECT_NE(out.find("unpack_c"), std::string::npos) << out;
}

TEST(ReportRatchet, ProptestMismatchesExitOne) {
  std::string out, err;
  EXPECT_EQ(run({"ratchet", fixture("bench_mismatch.json"), "--baseline",
                 fixture("bench_base.json")},
                out, err),
            1);
  EXPECT_NE(out.find("MISMATCH"), std::string::npos) << out;
}

TEST(ReportRatchet, MissingBaselineFlagExitTwo) {
  std::string out, err;
  EXPECT_EQ(run({"ratchet", fixture("bench_base.json")}, out, err), 2);
  EXPECT_FALSE(err.empty());
}

// ---------------------------------------------------------------------------
// Graceful degradation on empty artifacts.

TEST(ReportSummarize, EmptyArtifactExitZeroWithNote) {
  std::string out, err;
  EXPECT_EQ(run({"summarize", fixture("run_empty.json")}, out, err), 0) << err;
  EXPECT_NE(out.find("no run data"), std::string::npos) << out;
}

TEST(ReportSummarize, UnknownFlagExitTwo) {
  std::string out, err;
  EXPECT_EQ(run({"summarize", fixture("run_a.json"), "--frobnicate"}, out,
                err),
            2);
  EXPECT_FALSE(err.empty());
}

// ---------------------------------------------------------------------------
// Acceptance: two fixed-seed runs of the real pipeline diff clean.

/// Miniature of the tests/obs golden workload: selector -> scheduler ->
/// cycle sim under layer scopes, fixed seed, clean registry.  Returns
/// the full (unfiltered) metrics scrape, meta and wall-clock metrics
/// included — the diff's built-in noise rules must absorb those.
std::string run_fixed_workload_and_scrape() {
  obs::Registry::global().reset();
  Rng rng(42);
  for (int li = 0; li < 2; ++li) {
    obs::LayerScope scope("layer" + std::to_string(li));

    const std::int64_t rows = 6 + 2 * li;
    const std::int64_t cols = 32;
    std::vector<float> values(static_cast<std::size_t>(rows * cols));
    for (auto& v : values) v = static_cast<float>(rng.laplace(1.0));
    const auto views = partition_rows(Shape{rows, cols});
    const auto params = core::compute_quant_params(values, core::kInt8);
    core::SelectorConfig cfg;
    cfg.density_threshold = 0.5;
    const core::DynamicQuantizer quantizer(cfg);
    const core::PrecisionMap map = quantizer.select(values, views, params);
    quantizer.apply(values, views, params, map);

    core::LayerWork work;
    work.m_low = static_cast<std::int64_t>(map.low_subtensors());
    work.m_high = rows - work.m_low;
    work.n_high = 20;
    work.n_low = 12;
    work.k = cols;
    (void)core::schedule_greedy(work, core::ArrayDims{8, 8});

    TensorI32 a(Shape{5 + li, 6});
    TensorI32 w(Shape{6, 7});
    for (auto& v : a.data()) {
      v = static_cast<std::int32_t>(rng.uniform_int(-8, 8));
    }
    for (auto& v : w.data()) {
      v = static_cast<std::int32_t>(rng.uniform_int(-8, 8));
    }
    (void)systolic::simulate_gemm(a, w, core::ArrayDims{3, 4});
  }
  return obs::Registry::global().to_json();
}

TEST(ReportDiff, TwoFixedSeedPipelineRunsExitZero) {
  // Works under DRIFT_OBS_OFF too: both scrapes are then equally empty.
  const std::string tmp = ::testing::TempDir();
  const std::string path_a = tmp + "/drift_report_run_a.json";
  const std::string path_b = tmp + "/drift_report_run_b.json";
  ASSERT_TRUE(obs::write_file(path_a, run_fixed_workload_and_scrape()));
  ASSERT_TRUE(obs::write_file(path_b, run_fixed_workload_and_scrape()));

  std::string out, err;
  EXPECT_EQ(run({"diff", path_a, path_b}, out, err), 0) << out << err;
}

}  // namespace
}  // namespace drift::report
