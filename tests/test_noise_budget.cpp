// Tests for the automatic (noise-budget) threshold selection — the
// stats-only counterpart of the Hessian-aware minimum-δ rule.
#include <gtest/gtest.h>

#include <cmath>

#include "core/noise_budget.hpp"
#include "nn/synthetic.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace drift::core {
namespace {

QuantParams params_for(double max_abs) {
  QuantParams p;
  p.delta = max_abs / 127.0;
  return p;
}

SubTensorStats laplace_stats(double b, double max_mult = 7.0) {
  SubTensorStats s;
  s.mean_abs = b;
  s.max_abs = b * max_mult;
  s.mean = 0.0;
  s.mean_sq = 2.0 * b * b;
  return s;
}

TEST(NoiseBudget, FreeConversionsAlwaysTaken) {
  // Sub-tensors whose exact 4-bit range covers them at lc = 0 are
  // INT8-equivalent and selected even at zero budget.
  const QuantParams p = params_for(100.0);
  // max = 3.5 << 7*delta*... exact range at hc=4 is 7*delta = 5.5.
  std::vector<SubTensorStats> stats = {laplace_stats(0.5),
                                       laplace_stats(90.0 / 7.0)};
  std::vector<std::int64_t> sizes = {64, 64};
  const auto r = select_auto_threshold(stats, sizes, p, SelectorConfig{},
                                       /*budget=*/0.0);
  EXPECT_TRUE(r.decisions[0].use_low);   // fits lc = 0: free
  EXPECT_EQ(r.decisions[0].choice.lc, 0);
  EXPECT_FALSE(r.decisions[1].use_low);  // needs lc > 0: costs noise
  EXPECT_DOUBLE_EQ(r.excess_relative_mse, 0.0);
}

TEST(NoiseBudget, BudgetBuysNoisyConversions) {
  const QuantParams p = params_for(100.0);
  // max 80 < the exact lc=4 range (88.2), so conversion is feasible
  // but carries rounding noise the budget must pay for.
  std::vector<SubTensorStats> stats = {laplace_stats(80.0 / 7.0)};
  std::vector<std::int64_t> sizes = {64};
  const auto tight = select_auto_threshold(stats, sizes, p,
                                           SelectorConfig{}, 0.0);
  const auto loose = select_auto_threshold(stats, sizes, p,
                                           SelectorConfig{}, 0.5);
  EXPECT_FALSE(tight.decisions[0].use_low);
  EXPECT_TRUE(loose.decisions[0].use_low);
  EXPECT_GT(loose.excess_relative_mse, 0.0);
  EXPECT_LE(loose.excess_relative_mse, 0.5);
}

TEST(NoiseBudget, CoverageMonotoneInBudget) {
  Rng rng(301);
  const auto stats =
      nn::sample_subtensor_stats(rng, 512, 768, nn::bert_profile());
  std::vector<std::int64_t> sizes(stats.size(), 768);
  double max_abs = 0.0;
  for (const auto& s : stats) max_abs = std::max(max_abs, s.max_abs);
  const QuantParams p = params_for(max_abs * 127.0 / 127.0);

  double prev = -1.0;
  for (double budget : {0.0, 0.001, 0.01, 0.05, 0.2}) {
    const auto r = select_auto_threshold(stats, sizes, p, SelectorConfig{},
                                         budget);
    EXPECT_GE(r.low_fraction_by_elements, prev);
    EXPECT_LE(r.excess_relative_mse, budget + 1e-12);
    prev = r.low_fraction_by_elements;
  }
}

TEST(NoiseBudget, LocalCapRejectsWipeouts) {
  // A quiet sub-tensor whose lc >= 1 step would exceed the cap times
  // its own variance must stay high even under a huge global budget.
  const QuantParams p = params_for(100.0);
  // b tiny but max forces lc = 2: step 4*delta ~ 3.1, variance ~ 2*b^2.
  SubTensorStats quiet;
  quiet.mean_abs = 0.4;
  quiet.mean = 0.0;
  quiet.mean_sq = 2.0 * 0.4 * 0.4;
  quiet.max_abs = 20.0;  // needs lc = 2 (exact range 22.05 at lc=2)
  std::vector<SubTensorStats> stats = {quiet};
  std::vector<std::int64_t> sizes = {64};
  const auto r = select_auto_threshold(stats, sizes, p, SelectorConfig{},
                                       /*budget=*/100.0, /*noise_cap=*/0.125);
  EXPECT_FALSE(r.decisions[0].use_low);
  // With a permissive cap the same sub-tensor converts.
  const auto r2 = select_auto_threshold(stats, sizes, p, SelectorConfig{},
                                        100.0, /*noise_cap=*/100.0);
  EXPECT_TRUE(r2.decisions[0].use_low);
}

TEST(NoiseBudget, TrueVarianceGuardsShiftedData) {
  // Post-ReLU-like sub-tensor: large mean_abs (so the Laplace proxy
  // sees lots of "variance") but tiny true variation.  The true
  // variance accumulator must prevent the wipe-out.
  const QuantParams p = params_for(100.0);
  SubTensorStats shifted;
  shifted.mean_abs = 10.0;
  shifted.mean = 10.0;           // all values near +10
  shifted.mean_sq = 100.4;       // true variance = 0.4
  shifted.max_abs = 20.0;        // forces lc = 2, step ~ 3.1
  std::vector<SubTensorStats> stats = {shifted};
  std::vector<std::int64_t> sizes = {64};
  const auto r = select_auto_threshold(stats, sizes, p, SelectorConfig{},
                                       100.0, 0.125);
  EXPECT_FALSE(r.decisions[0].use_low);
}

TEST(NoiseBudget, ImpliedDeltaReproducesSelection) {
  // Running Eq. 5-6 at the reported δ must accept every selected
  // sub-tensor whose conversion carries noise (the δ cut property).
  Rng rng(307);
  const auto stats =
      nn::sample_subtensor_stats(rng, 256, 512, nn::llm_profile());
  std::vector<std::int64_t> sizes(stats.size(), 512);
  double max_abs = 0.0;
  for (const auto& s : stats) max_abs = std::max(max_abs, s.max_abs);
  QuantParams p;
  p.delta = max_abs / 127.0;
  const auto r =
      select_auto_threshold(stats, sizes, p, SelectorConfig{}, 0.02);
  SelectorConfig at_cut;
  at_cut.density_threshold = r.delta_threshold;
  for (std::size_t i = 0; i < stats.size(); ++i) {
    if (!r.decisions[i].use_low) continue;
    if (r.decisions[i].choice.lc == 0) continue;  // free: below any δ
    EXPECT_TRUE(select_precision(stats[i], p, at_cut).use_low) << i;
  }
}

TEST(NoiseBudget, MapMatchesDecisions) {
  Rng rng(311);
  const auto stats =
      nn::sample_subtensor_stats(rng, 64, 128, nn::bert_profile());
  std::vector<std::int64_t> sizes(stats.size(), 128);
  double max_abs = 0.0;
  for (const auto& s : stats) max_abs = std::max(max_abs, s.max_abs);
  QuantParams p;
  p.delta = max_abs / 127.0;
  const auto sel =
      select_auto_threshold(stats, sizes, p, SelectorConfig{}, 0.05);
  const auto map =
      auto_threshold_map(stats, sizes, p, SelectorConfig{}, 0.05);
  ASSERT_EQ(map.num_subtensors(), sel.decisions.size());
  double low = 0.0;
  for (std::size_t i = 0; i < sel.decisions.size(); ++i) {
    EXPECT_EQ(map.decision(i).use_low, sel.decisions[i].use_low);
    if (sel.decisions[i].use_low) low += 1.0;
  }
  EXPECT_NEAR(map.low_fraction_by_elements(),
              sel.low_fraction_by_elements, 1e-12);
}

TEST(NoiseBudget, MismatchedSizesThrow) {
  std::vector<SubTensorStats> stats(3);
  std::vector<std::int64_t> sizes(2, 10);
  QuantParams p;
  EXPECT_THROW(
      select_auto_threshold(stats, sizes, p, SelectorConfig{}, 0.1),
      drift::check_error);
}

}  // namespace
}  // namespace drift::core
