// Cross-module integration tests: algorithm -> mix -> scheduler ->
// accelerator pipeline, and analytical-vs-cycle-sim cross-verification.
#include <gtest/gtest.h>

#include "accel/compare.hpp"
#include "core/hessian.hpp"
#include "nn/precision_mix.hpp"
#include "nn/proxy.hpp"
#include "systolic/cycle_sim.hpp"

namespace drift {
namespace {

TEST(Integration, AnalyticalAndCycleSimAgreeOnStallFreeWorkloads) {
  // The paper cross-verifies its simulator against RTL; we cross-verify
  // the Eq. 7 analytical model against the cycle-level simulation on a
  // sweep of shapes (scalar-array form: pa=4 rows, one column class).
  Rng rng(211);
  for (int trial = 0; trial < 8; ++trial) {
    const std::int64_t M = rng.uniform_int(1, 40);
    const std::int64_t K = rng.uniform_int(1, 30);
    const std::int64_t N = rng.uniform_int(1, 30);
    const std::int64_t R = rng.uniform_int(2, 8);
    const std::int64_t C = rng.uniform_int(2, 8);
    TensorI32 a(Shape{M, K}, 1);
    TensorI32 w(Shape{K, N}, 1);
    const auto sim = systolic::simulate_gemm(a, w, {R, C});
    const std::int64_t tiles = ((K + R - 1) / R) * ((N + C - 1) / C);
    const std::int64_t analytical = tiles * (R + (M + R + C - 2));
    EXPECT_EQ(sim.cycles, analytical)
        << "M=" << M << " K=" << K << " N=" << N << " R=" << R
        << " C=" << C;
  }
}

TEST(Integration, ProxyRecordsFeedLayerWork) {
  // The functional engine's records and the shape-level mix generator
  // must tell a consistent story about low-precision coverage.
  nn::TransformerProxy::Config cfg;
  cfg.samples = 16;
  const nn::TransformerProxy proxy(cfg);
  nn::QuantEngine::Config ecfg;
  ecfg.mode = nn::QuantMode::kDrift;
  ecfg.drift.density_threshold = 0.5;
  nn::QuantEngine engine(ecfg);
  const auto result = proxy.evaluate(engine);
  EXPECT_FALSE(engine.records().size() == 0);
  EXPECT_NEAR(engine.overall_act_low_fraction(), result.act_low_fraction,
              1e-9);
}

TEST(Integration, HessianSearchPicksUsableThresholdOnRealProxy) {
  // End-to-end Hessian-aware δ selection on the transformer proxy's
  // first-layer activations.
  Rng rng(223);
  const std::int64_t rows = 24, cols = 32;
  nn::SubTensorScaleProfile profile = nn::bert_profile();
  const TensorF x = nn::synth_rows(rng, rows, cols, profile);
  const auto views = partition_rows(x.shape());
  const auto params = core::compute_quant_params(x.data(), core::kInt8);

  // Loss: distance of a fixed random projection of the activations
  // (stand-in for downstream task loss).
  std::vector<float> probe(static_cast<std::size_t>(cols));
  for (auto& p : probe) p = static_cast<float>(rng.normal());
  std::vector<float> reference(static_cast<std::size_t>(rows), 0.0f);
  auto project = [&](std::span<const float> vals, std::size_t r) {
    double acc = 0.0;
    for (std::int64_t c = 0; c < cols; ++c) {
      acc += static_cast<double>(
                 vals[static_cast<std::size_t>(r) * cols +
                      static_cast<std::size_t>(c)]) *
             probe[static_cast<std::size_t>(c)];
    }
    return acc;
  };
  for (std::size_t r = 0; r < static_cast<std::size_t>(rows); ++r) {
    reference[r] = static_cast<float>(project(x.data(), r));
  }
  core::LossFn loss = [&](std::span<const float> vals) {
    double acc = 0.0;
    for (std::size_t r = 0; r < static_cast<std::size_t>(rows); ++r) {
      const double d = project(vals, r) - reference[r];
      acc += d * d;
    }
    return acc / static_cast<double>(rows);
  };

  auto render_at = [&](double delta) {
    core::SelectorConfig scfg;
    scfg.density_threshold = delta;
    const core::DynamicQuantizer dq(scfg);
    const auto map = dq.select(x.data(), views, params);
    return dq.apply(x.data(), views, params, map);
  };
  auto low_at = [&](double delta) {
    core::SelectorConfig scfg;
    scfg.density_threshold = delta;
    const core::DynamicQuantizer dq(scfg);
    return dq.select(x.data(), views, params).low_fraction_by_elements();
  };

  // Code-unit ratios span decades; the top of the grid selects nothing
  // beyond the INT8 floor, whose own loss sets the attainable minimum
  // — the budget is expressed relative to that floor.
  const std::vector<double> grid = {1e-2, 1e0, 1e2, 1e4, 1e6, 1e8};
  std::vector<float> int8_floor = render_at(grid.back());
  std::vector<float> floor_dir(x.numel());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    floor_dir[static_cast<std::size_t>(i)] =
        int8_floor[static_cast<std::size_t>(i)] - x.data()[
            static_cast<std::size_t>(i)];
  }
  const double floor_loss =
      std::max(0.5 * core::curvature_along(loss, x.data(), floor_dir), 0.0);
  const auto result = core::select_threshold_hessian_aware(
      loss, x.data(), render_at, low_at, grid, floor_loss * 1.5 + 1e-9);
  EXPECT_TRUE(result.within_budget);
  // Low fraction must decrease (weakly) along the grid.
  for (std::size_t i = 1; i < result.candidates.size(); ++i) {
    EXPECT_LE(result.candidates[i].low_fraction,
              result.candidates[i - 1].low_fraction + 1e-9);
  }
}

TEST(Integration, FullPipelineSevenModels) {
  // Smoke test over the whole paper workload set: every model runs on
  // all four accelerators and preserves the headline ordering.
  accel::CompareConfig cfg;
  cfg.drift_selector.density_threshold = 0.5;
  double drift_over_bf_product = 1.0;
  int n = 0;
  for (const auto& spec : nn::paper_workloads()) {
    const auto cmp = accel::compare_workload(spec, cfg);
    EXPECT_GT(cmp.speedup_drift(), 1.0) << spec.model;
    EXPECT_GE(cmp.speedup_drift() * 1.0001, cmp.speedup_drq()) << spec.model;
    drift_over_bf_product *=
        cmp.speedup_drift() / cmp.speedup_bitfusion();
    ++n;
  }
  const double geomean =
      std::pow(drift_over_bf_product, 1.0 / static_cast<double>(n));
  // Paper: 2.85x average over BitFusion; accept the 2-4x band.
  EXPECT_GT(geomean, 1.8);
  EXPECT_LT(geomean, 4.5);
}

TEST(Integration, DeterministicEndToEnd) {
  accel::CompareConfig cfg;
  cfg.drift_selector.density_threshold = 0.5;
  const auto a = accel::compare_workload(nn::make_deit_s(), cfg);
  const auto b = accel::compare_workload(nn::make_deit_s(), cfg);
  EXPECT_EQ(a.drift.cycles, b.drift.cycles);
  EXPECT_DOUBLE_EQ(a.drift.energy.total_pj(), b.drift.energy.total_pj());
}

}  // namespace
}  // namespace drift
