// Cross-verification of the float "effective rendering" simulation
// against the integer-domain execution the hardware actually performs.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/gemm.hpp"
#include "nn/int_gemm.hpp"
#include "nn/synthetic.hpp"
#include "util/rng.hpp"

namespace drift::nn {
namespace {

TEST(IntGemm, DequantizeMatchesEffectiveRendering) {
  Rng rng(401);
  const TensorF x = synth_rows(rng, 48, 96, bert_profile());
  const auto op = quantize_rows(x, core::SelectorConfig{}, 0.05);
  const TensorF dequant = dequantize_operand(op);
  // Each element must equal code * row_scale exactly.
  for (std::int64_t r = 0; r < 48; ++r) {
    const double scale = op.row_scale(r);
    for (std::int64_t c = 0; c < 96; ++c) {
      EXPECT_FLOAT_EQ(dequant(r, c),
                      static_cast<float>(op.codes(r, c) * scale));
    }
  }
}

TEST(IntGemm, CodesRespectSelectedPrecision) {
  Rng rng(403);
  const TensorF x = synth_rows(rng, 64, 128, llm_profile());
  const auto op = quantize_rows(x, core::SelectorConfig{}, 0.05);
  for (std::int64_t r = 0; r < 64; ++r) {
    const std::int64_t lim = op.rows[static_cast<std::size_t>(r)].use_low
                                 ? op.lp.max_level()
                                 : op.params.bits.max_level();
    for (std::int64_t c = 0; c < 128; ++c) {
      EXPECT_LE(std::abs(op.codes(r, c)), lim)
          << "row " << r << " col " << c;
    }
  }
}

TEST(IntGemm, IntegerPathEqualsFloatPath) {
  // The headline equivalence: integer MAC + per-output rescale equals
  // the float GEMM over the effective renderings (up to float
  // summation order, hence the tight relative tolerance).
  Rng rng(405);
  const TensorF a = synth_rows(rng, 24, 64, bert_profile());
  const TensorF w = synth_rows(rng, 32, 64, weight_profile());
  const auto qa = quantize_rows(a, core::SelectorConfig{}, 0.05);
  const auto qw = quantize_rows(w, core::SelectorConfig{}, 0.05);

  const TensorF int_out = int_gemm_nt(qa, qw);
  const TensorF float_out =
      matmul_nt(dequantize_operand(qa), dequantize_operand(qw));

  for (std::int64_t i = 0; i < int_out.numel(); ++i) {
    const double expect = float_out.at(i);
    const double got = int_out.at(i);
    EXPECT_NEAR(got, expect,
                std::max(1e-4, 1e-5 * std::abs(expect)))
        << "element " << i;
  }
}

TEST(IntGemm, MixedPrecisionActuallyUsed) {
  Rng rng(407);
  const TensorF a = synth_rows(rng, 64, 256, llm_profile());
  const auto qa = quantize_rows(a, core::SelectorConfig{}, 0.05);
  int low = 0;
  for (const auto& d : qa.rows) low += d.use_low ? 1 : 0;
  EXPECT_GT(low, 10);           // a real mix,
  EXPECT_LT(low, 64);           // not a degenerate all-low selection
}

TEST(IntGemm, LlFractionComputation) {
  Rng rng(409);
  const TensorF a = synth_rows(rng, 32, 64, llm_profile());
  const TensorF w = synth_rows(rng, 32, 64, weight_profile());
  const auto qa = quantize_rows(a, core::SelectorConfig{}, 0.1);
  const auto qw = quantize_rows(w, core::SelectorConfig{}, 0.1);
  const double f = ll_fraction(qa, qw);
  EXPECT_GE(f, 0.0);
  EXPECT_LE(f, 1.0);
  double act_low = 0.0, wgt_low = 0.0;
  for (const auto& d : qa.rows) act_low += d.use_low ? 1.0 : 0.0;
  for (const auto& d : qw.rows) wgt_low += d.use_low ? 1.0 : 0.0;
  EXPECT_NEAR(f, (act_low / 32.0) * (wgt_low / 32.0), 1e-12);
}

class IntGemmPrecisionSweep : public ::testing::TestWithParam<int> {};

TEST_P(IntGemmPrecisionSweep, EquivalenceHoldsForFlexiblePrecisions) {
  // Section 5.3: the BG fabric also supports 3- and 5-bit settings;
  // the integer/float equivalence must hold for those too.
  const int lp = GetParam();
  Rng rng(411 + static_cast<std::uint64_t>(lp));
  const TensorF a = synth_rows(rng, 16, 48, bert_profile());
  const TensorF w = synth_rows(rng, 24, 48, weight_profile());
  core::SelectorConfig cfg;
  cfg.lp = core::Precision(lp);
  const auto qa = quantize_rows(a, cfg, 0.05);
  const auto qw = quantize_rows(w, cfg, 0.05);
  const TensorF int_out = int_gemm_nt(qa, qw);
  const TensorF float_out =
      matmul_nt(dequantize_operand(qa), dequantize_operand(qw));
  for (std::int64_t i = 0; i < int_out.numel(); ++i) {
    EXPECT_NEAR(int_out.at(i), float_out.at(i),
                std::max(1e-4, 1e-5 * std::abs(float_out.at(i))));
  }
}

INSTANTIATE_TEST_SUITE_P(FlexiblePrecisions, IntGemmPrecisionSweep,
                         ::testing::Values(3, 4, 5));

}  // namespace
}  // namespace drift::nn
