// Tests for the analytical latency model (Equation 7) and the balanced
// online scheduler (Equation 8).
#include <gtest/gtest.h>

#include "core/analytical_model.hpp"
#include "core/layer_work.hpp"
#include "core/scheduler.hpp"
#include "util/assert.hpp"

namespace drift::core {
namespace {

TEST(AnalyticalModel, HandComputedExample) {
  // M=100, K=96, N=528 at 8x8 on 24x33:
  // reps = ceil(8*96/96) * ceil(8*528/528) = 8 * 8 = 64
  // per-tile = R + (M + R + C - 2) = 24 + 100 + 24 + 33 - 2 = 179.
  const GemmDims g{100, 96, 528};
  const ArrayDims a{24, 33};
  EXPECT_EQ(ws_tile_repetitions(g, 8, 8, a), 64);
  EXPECT_EQ(ws_latency_cycles(g, 8, 8, a), 179 * 64);
}

TEST(AnalyticalModel, PrecisionScalesRepetitions) {
  const GemmDims g{64, 256, 512};
  const ArrayDims a{16, 16};
  const auto reps88 = ws_tile_repetitions(g, 8, 8, a);
  const auto reps48 = ws_tile_repetitions(g, 4, 8, a);
  const auto reps44 = ws_tile_repetitions(g, 4, 4, a);
  EXPECT_EQ(reps88, 2 * reps48);
  EXPECT_EQ(reps48, 2 * reps44);
}

TEST(AnalyticalModel, EmptyWorkIsFree) {
  EXPECT_EQ(ws_latency_cycles({0, 10, 10}, 8, 8, {4, 4}), 0);
  EXPECT_EQ(ws_latency_cycles({10, 10, 0}, 8, 8, {4, 4}), 0);
}

TEST(AnalyticalModel, ZeroArrayWithWorkIsInfeasible) {
  EXPECT_EQ(ws_latency_cycles({10, 10, 10}, 8, 8, {0, 4}),
            kInfeasibleLatency);
  EXPECT_EQ(ws_latency_cycles({10, 10, 10}, 8, 8, {4, 0}),
            kInfeasibleLatency);
}

TEST(AnalyticalModel, MoreRowsNeverIncreaseTileCount) {
  const GemmDims g{32, 300, 300};
  for (std::int64_t r = 1; r < 64; ++r) {
    const auto a = ws_tile_repetitions(g, 8, 8, {r, 16});
    const auto b = ws_tile_repetitions(g, 8, 8, {r + 1, 16});
    EXPECT_GE(a, b);
  }
}

LayerWork typical_work() {
  LayerWork w;
  w.m_high = 40;
  w.m_low = 160;
  w.n_high = 100;
  w.n_low = 412;
  w.k = 768;
  return w;
}

TEST(QuadrantLatencies, EmptyClassCostsNothing) {
  LayerWork w = typical_work();
  w.m_high = 0;
  const auto lat = quadrant_latencies(w, {24, 33}, 0, 16);
  EXPECT_EQ(lat[static_cast<int>(Quadrant::kHH)], 0);
  EXPECT_EQ(lat[static_cast<int>(Quadrant::kHL)], 0);
}

TEST(QuadrantLatencies, NonEmptyClassOnZeroSliceIsInfeasible) {
  const auto lat = quadrant_latencies(typical_work(), {24, 33}, 0, 16);
  EXPECT_EQ(lat[static_cast<int>(Quadrant::kHH)], kInfeasibleLatency);
}

TEST(Scheduler, GreedyMatchesExhaustiveOnTypicalWork) {
  const ArrayDims total{24, 33};
  const auto greedy = schedule_greedy(typical_work(), total);
  const auto oracle = schedule_exhaustive(typical_work(), total);
  // Greedy is allowed to tie-break differently but must reach the
  // oracle makespan within a few percent.
  EXPECT_LE(static_cast<double>(greedy.makespan),
            1.05 * static_cast<double>(oracle.makespan));
}

class SchedulerSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>> {};

TEST_P(SchedulerSweep, GreedyNearOracleAcrossMixes) {
  const auto [mh, ml, nh, nl, k] = GetParam();
  LayerWork w;
  w.m_high = mh;
  w.m_low = ml;
  w.n_high = nh;
  w.n_low = nl;
  w.k = k;
  const ArrayDims total{24, 33};
  const auto greedy = schedule_greedy(w, total);
  const auto oracle = schedule_exhaustive(w, total);
  EXPECT_LE(static_cast<double>(greedy.makespan),
            1.10 * static_cast<double>(oracle.makespan))
      << "mh=" << mh << " ml=" << ml << " nh=" << nh << " nl=" << nl;
  // And both must be feasible.
  EXPECT_LT(greedy.makespan, kInfeasibleLatency);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, SchedulerSweep,
    ::testing::Values(std::make_tuple(10, 190, 50, 450, 512),
                      std::make_tuple(100, 100, 250, 250, 256),
                      std::make_tuple(190, 10, 450, 50, 1024),
                      std::make_tuple(0, 200, 0, 500, 512),
                      std::make_tuple(200, 0, 500, 0, 512),
                      std::make_tuple(1, 199, 499, 1, 128),
                      std::make_tuple(37, 91, 333, 77, 96),
                      std::make_tuple(5, 5, 5, 5, 64)));

TEST(Scheduler, BalancedBeatsFixedQuarterOnSkewedMix) {
  // 95% low work: a fixed half/half split starves the low arrays.
  LayerWork w;
  w.m_high = 10;
  w.m_low = 190;
  w.n_high = 25;
  w.n_low = 487;
  w.k = 768;
  const ArrayDims total{24, 33};
  const auto balanced = schedule_greedy(w, total);
  const auto fixed = schedule_fixed_quarters(w, total);
  EXPECT_LT(balanced.makespan, fixed.makespan);
}

TEST(Scheduler, AllHighWorkNeverWorseThanWholeArray) {
  // With only hh work the scheduler may still shrink the array when a
  // smaller slice balances tile count against fill/drain overhead, but
  // it can never do worse than simply using everything.
  LayerWork w;
  w.m_high = 128;
  w.n_high = 512;
  w.k = 768;
  const ArrayDims total{24, 33};
  const auto d = schedule_exhaustive(w, total);
  EXPECT_LE(d.makespan, ws_latency_cycles({128, 768, 512}, 8, 8, total));
  EXPECT_LT(d.makespan, kInfeasibleLatency);
}

TEST(Scheduler, MakespanIsMaxOfQuadrants) {
  const auto d = schedule_greedy(typical_work(), {24, 33});
  std::int64_t peak = 0;
  for (auto l : d.latency) peak = std::max(peak, l);
  EXPECT_EQ(d.makespan, peak);
}

TEST(Scheduler, FixedQuartersFeasibleOnDegenerateMixes) {
  LayerWork w;
  w.m_high = 0;
  w.m_low = 100;
  w.n_high = 0;
  w.n_low = 200;
  w.k = 64;
  const auto d = schedule_fixed_quarters(w, {24, 33});
  EXPECT_LT(d.makespan, kInfeasibleLatency);
}

TEST(LayerWork, MakeFromMapsCountsClasses) {
  SelectorConfig cfg;
  std::vector<PrecisionDecision> act = {
      {true, {0, 4}}, {false, {}}, {true, {1, 3}}};
  std::vector<std::int64_t> act_sizes = {8, 8, 8};
  const PrecisionMap act_map(std::move(act), std::move(act_sizes), cfg);
  std::vector<PrecisionDecision> wgt = {{false, {}}, {true, {2, 2}}};
  std::vector<std::int64_t> wgt_sizes = {8, 8};
  const PrecisionMap wgt_map(std::move(wgt), std::move(wgt_sizes), cfg);

  const LayerWork w = make_layer_work(act_map, wgt_map, 16);
  EXPECT_EQ(w.m_low, 2);
  EXPECT_EQ(w.m_high, 1);
  EXPECT_EQ(w.n_low, 1);
  EXPECT_EQ(w.n_high, 1);
  EXPECT_EQ(w.k, 16);
  EXPECT_EQ(w.total_macs(), 3 * 16 * 2);
}

TEST(LayerWork, MacFractions) {
  LayerWork w;
  w.m_high = 1;
  w.m_low = 3;
  w.n_high = 1;
  w.n_low = 1;
  w.k = 10;
  EXPECT_NEAR(ll_mac_fraction(w), 3.0 / 8.0, 1e-12);
  EXPECT_NEAR(any_low_mac_fraction(w), 1.0 - 1.0 / 8.0, 1e-12);
}

}  // namespace
}  // namespace drift::core
