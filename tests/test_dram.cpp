// Tests for the DRAM model.
#include <gtest/gtest.h>

#include "dram/dram.hpp"
#include "util/assert.hpp"

namespace drift::dram {
namespace {

TEST(Dram, SingleBurstPaysActivation) {
  DramModel model;
  const auto r = model.transfer(0, 64, false);
  EXPECT_EQ(model.stats().reads, 1);
  EXPECT_EQ(model.stats().row_misses, 1);
  EXPECT_EQ(model.stats().row_hits, 0);
  EXPECT_GT(r.core_cycles, 0);
  EXPECT_GT(r.energy_pj, 0.0);
}

TEST(Dram, SequentialStreamIsMostlyRowHits) {
  DramModel model;
  model.transfer(0, 1 << 20, false);  // 1 MiB sequential
  EXPECT_GT(model.stats().row_hit_rate(), 0.9);
}

TEST(Dram, RevisitingOpenRowHits) {
  DramModel model;
  model.transfer(0, 64, false);
  const auto before = model.stats().row_hits;
  model.transfer(0, 64, false);  // same row, still open
  EXPECT_EQ(model.stats().row_hits, before + 1);
}

TEST(Dram, HitsAreCheaperThanMisses) {
  DramModel model;
  const auto miss = model.transfer(0, 64, false);
  const auto hit = model.transfer(0, 64, false);
  EXPECT_LT(hit.core_cycles, miss.core_cycles + 1);
  EXPECT_LT(hit.energy_pj, miss.energy_pj);
}

TEST(Dram, BandwidthScalesWithChannels) {
  DramConfig one;
  one.channels = 1;
  DramConfig four;
  four.channels = 4;
  EXPECT_NEAR(DramModel(four).peak_bytes_per_core_cycle(),
              4.0 * DramModel(one).peak_bytes_per_core_cycle(), 1e-9);
}

TEST(Dram, LargeStreamApproachesPeakBandwidth) {
  DramModel model;
  const std::int64_t bytes = 8 << 20;
  const auto r = model.transfer(0, bytes, false);
  const double achieved =
      static_cast<double>(bytes) / static_cast<double>(r.core_cycles);
  EXPECT_GT(achieved, 0.7 * model.peak_bytes_per_core_cycle());
  EXPECT_LE(achieved, 1.05 * model.peak_bytes_per_core_cycle());
}

TEST(Dram, StreamAdvancesToFreshRows) {
  DramModel model;
  model.stream(64, false);
  const auto misses_before = model.stats().row_misses;
  model.stream(64, false);  // new region: must be a fresh row
  EXPECT_GT(model.stats().row_misses, misses_before);
}

TEST(Dram, ZeroByteTransferIsFree) {
  DramModel model;
  const auto r = model.transfer(0, 0, false);
  EXPECT_EQ(r.core_cycles, 0);
  EXPECT_DOUBLE_EQ(r.energy_pj, 0.0);
}

TEST(Dram, WritesCounted) {
  DramModel model;
  model.transfer(0, 256, true);
  EXPECT_EQ(model.stats().writes, 4);
  EXPECT_EQ(model.stats().reads, 0);
}

TEST(Dram, EnergyAccumulatesInStats) {
  DramModel model;
  const auto a = model.transfer(0, 1024, false);
  const auto b = model.transfer(1 << 16, 1024, true);
  EXPECT_NEAR(model.stats().energy_pj, a.energy_pj + b.energy_pj, 1e-6);
}

TEST(Dram, InvalidGeometryThrows) {
  DramConfig bad;
  bad.row_bytes = 100;  // not a multiple of burst
  EXPECT_THROW(DramModel{bad}, drift::check_error);
}

TEST(Dram, ResetStatsClears) {
  DramModel model;
  model.transfer(0, 4096, false);
  model.reset_stats();
  EXPECT_EQ(model.stats().reads, 0);
  EXPECT_DOUBLE_EQ(model.stats().energy_pj, 0.0);
}

}  // namespace
}  // namespace drift::dram
