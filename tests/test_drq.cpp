// Tests for the DRQ baseline quantizer, including the transformer
// failure mode the paper reports (Section 5.2).
#include <gtest/gtest.h>

#include <cmath>

#include "core/drq_quantizer.hpp"
#include "util/rng.hpp"

namespace drift::core {
namespace {

TEST(Drq, SensitiveRegionsStayHigh) {
  // Two rows: one loud (sensitive), one quiet.
  TensorF x(Shape{2, 8});
  for (std::int64_t c = 0; c < 8; ++c) {
    x(0, c) = 4.0f;   // loud
    x(1, c) = 0.2f;   // quiet
  }
  const auto views = partition_rows(x.shape());
  const QuantParams params = compute_quant_params(x.data(), kInt8);
  const DrqQuantizer drq(DrqConfig{});
  const PrecisionMap map = drq.select(x.data(), views, params);
  EXPECT_FALSE(map.decision(0).use_low);  // sensitive -> 8-bit
  EXPECT_TRUE(map.decision(1).use_low);   // insensitive -> 4-bit
}

TEST(Drq, LowRegionsUseFixedTruncationChoice) {
  TensorF x(Shape{2, 8});
  for (std::int64_t c = 0; c < 8; ++c) {
    x(0, c) = 4.0f;
    x(1, c) = 0.2f;
  }
  const auto views = partition_rows(x.shape());
  const QuantParams params = compute_quant_params(x.data(), kInt8);
  const DrqQuantizer drq(DrqConfig{});
  const PrecisionMap map = drq.select(x.data(), views, params);
  EXPECT_EQ(map.decision(1).choice.hc, 0);
  EXPECT_EQ(map.decision(1).choice.lc, 4);
}

TEST(Drq, TruncationZeroesSmallValuesUnderOutlierScale) {
  // The failure mechanism: one outlier row inflates Δ; quiet rows are
  // then truncated to zero by the low-bit clip.
  TensorF x(Shape{2, 8});
  for (std::int64_t c = 0; c < 8; ++c) {
    x(0, c) = 20.0f;  // outlier token
    x(1, c) = 0.5f;   // informative token
  }
  const auto views = partition_rows(x.shape());
  const QuantParams params = compute_quant_params(x.data(), kInt8);
  const DrqQuantizer drq(DrqConfig{});
  const PrecisionMap map = drq.select(x.data(), views, params);
  ASSERT_TRUE(map.decision(1).use_low);
  const auto rendered = drq.apply(x.data(), views, params, map);
  // step = 16 * (20/127) = 2.52 -> 0.5 rounds to 0: signal destroyed.
  for (std::int64_t c = 0; c < 8; ++c) {
    EXPECT_FLOAT_EQ(rendered[static_cast<std::size_t>(8 + c)], 0.0f);
  }
}

TEST(Drq, DriftSurvivesTheSameOutlierScenario) {
  // Contrast test: Drift's Eq. 5 clips from the high end for the quiet
  // row, preserving its resolution where DRQ zeroes it.
  TensorF x(Shape{2, 8});
  Rng rng(79);
  for (std::int64_t c = 0; c < 8; ++c) {
    x(0, c) = 20.0f;
    x(1, c) = static_cast<float>(0.5 + 0.1 * rng.normal());
  }
  const auto views = partition_rows(x.shape());
  const QuantParams params = compute_quant_params(x.data(), kInt8);

  SelectorConfig cfg;
  cfg.density_threshold = 0.5;
  const DynamicQuantizer drift_q(cfg);
  const PrecisionMap map = drift_q.select(x.data(), views, params);
  ASSERT_TRUE(map.decision(1).use_low);
  EXPECT_GT(map.decision(1).choice.hc, 0);  // high-end clip chosen
  const auto rendered = drift_q.apply(x.data(), views, params, map);
  double err = 0.0;
  for (std::int64_t c = 0; c < 8; ++c) {
    err = std::max(err, std::abs(static_cast<double>(
                            rendered[static_cast<std::size_t>(8 + c)]) -
                        x(1, c)));
  }
  // Error stays well below the signal magnitude (DRQ's was 100%).
  EXPECT_LT(err, 0.25);
}

TEST(Drq, SensitivityScalesClassification) {
  Rng rng(83);
  TensorF x(Shape{64, 16});
  for (std::int64_t r = 0; r < 64; ++r) {
    const double b = std::exp(rng.normal(0.0, 1.0));
    for (std::int64_t c = 0; c < 16; ++c) {
      x(r, c) = static_cast<float>(rng.laplace(b));
    }
  }
  const auto views = partition_rows(x.shape());
  const QuantParams params = compute_quant_params(x.data(), kInt8);
  DrqConfig loose;
  loose.sensitivity = 0.5;  // fewer rows counted sensitive
  DrqConfig strict;
  strict.sensitivity = 2.0;  // more rows counted... (higher bar to be
                             // sensitive -> more rows go low)
  const auto map_loose =
      DrqQuantizer(loose).select(x.data(), views, params);
  const auto map_strict =
      DrqQuantizer(strict).select(x.data(), views, params);
  EXPECT_LE(map_loose.low_fraction_by_count(),
            map_strict.low_fraction_by_count());
}

TEST(Drq, ApplyLeavesHighRegionsAtInt8Accuracy) {
  TensorF x(Shape{2, 4});
  x(0, 0) = 3.0f; x(0, 1) = -2.0f; x(0, 2) = 1.0f; x(0, 3) = 2.5f;
  x(1, 0) = 0.1f; x(1, 1) = 0.0f; x(1, 2) = -0.1f; x(1, 3) = 0.05f;
  const auto views = partition_rows(x.shape());
  const QuantParams params = compute_quant_params(x.data(), kInt8);
  const DrqQuantizer drq(DrqConfig{});
  const PrecisionMap map = drq.select(x.data(), views, params);
  const auto rendered = drq.apply(x.data(), views, params, map);
  for (std::int64_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(rendered[static_cast<std::size_t>(c)], x(0, c),
                0.5 * params.delta + 1e-6);
  }
}

}  // namespace
}  // namespace drift::core
