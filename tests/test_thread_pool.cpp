// ThreadPool semantics (chunking, exceptions, nesting) and the
// determinism guarantee of the parallel kernels: outputs must be
// bit-identical to the serial (1-thread) path at every thread count,
// because chunk boundaries are fixed by the grain, never by the pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "nn/conv2d.hpp"
#include "nn/gemm.hpp"
#include "nn/int_gemm.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace drift;
using util::ThreadPool;

namespace {

/// Restores the global pool's thread count on scope exit.
class PoolSizeGuard {
 public:
  PoolSizeGuard() : saved_(ThreadPool::instance().num_threads()) {}
  ~PoolSizeGuard() { ThreadPool::instance().resize(saved_); }

 private:
  int saved_;
};

TensorF laplace_tensor(std::int64_t rows, std::int64_t cols,
                       std::uint64_t seed) {
  Rng rng(seed);
  TensorF t(Shape{rows, cols});
  auto d = t.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    // Heavy-tailed per-row scale spread, as the paper's Figure 1 shows.
    const double b = 0.02 * std::exp(rng.normal(0.0, 0.8));
    for (std::int64_t c = 0; c < cols; ++c) {
      d[static_cast<std::size_t>(r * cols + c)] =
          static_cast<float>(rng.laplace(b));
    }
  }
  return t;
}

bool bit_identical(const TensorF& a, const TensorF& b) {
  if (a.numel() != b.numel()) return false;
  return std::memcmp(a.data().data(), b.data().data(),
                     a.data().size() * sizeof(float)) == 0;
}

TEST(ThreadPoolTest, EmptyRangeNeverInvokes) {
  std::atomic<int> calls{0};
  util::parallel_for(5, 5, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  util::parallel_for(7, 3, 2, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, GrainLargerThanRangeIsOneChunk) {
  std::atomic<int> calls{0};
  std::int64_t lo = -1, hi = -1;
  util::parallel_for(2, 9, 100, [&](std::int64_t b, std::int64_t e) {
    ++calls;
    lo = b;
    hi = e;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(lo, 2);
  EXPECT_EQ(hi, 9);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  PoolSizeGuard guard;
  for (int threads : {1, 2, 8}) {
    ThreadPool::instance().resize(threads);
    const std::int64_t n = 1000;
    std::vector<int> touched(static_cast<std::size_t>(n), 0);
    util::parallel_for(0, n, 7, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) {
        ++touched[static_cast<std::size_t>(i)];
      }
    });
    EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0), n)
        << "threads=" << threads;
    for (int t : touched) EXPECT_EQ(t, 1);
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  PoolSizeGuard guard;
  for (int threads : {1, 4}) {
    ThreadPool::instance().resize(threads);
    EXPECT_THROW(
        util::parallel_for(0, 100, 5,
                           [&](std::int64_t b, std::int64_t) {
                             if (b >= 50) throw std::runtime_error("boom");
                           }),
        std::runtime_error);
    // The pool must stay usable after an exception.
    std::atomic<std::int64_t> sum{0};
    util::parallel_for(0, 10, 2, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) sum += i;
    });
    EXPECT_EQ(sum.load(), 45);
  }
}

TEST(ThreadPoolTest, NestedSubmitRunsWithoutDeadlock) {
  PoolSizeGuard guard;
  ThreadPool::instance().resize(4);
  const std::int64_t outer = 16, inner = 64;
  std::vector<std::int64_t> row_sums(static_cast<std::size_t>(outer), 0);
  util::parallel_for(0, outer, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      std::int64_t local = 0;
      util::parallel_for(0, inner, 8, [&](std::int64_t jb, std::int64_t je) {
        for (std::int64_t j = jb; j < je; ++j) local += j;
      });
      row_sums[static_cast<std::size_t>(i)] = local;
    }
  });
  for (std::int64_t s : row_sums) EXPECT_EQ(s, inner * (inner - 1) / 2);
}

TEST(ThreadPoolTest, EnvOverrideControlsDefault) {
  char* old = std::getenv("DRIFT_NUM_THREADS");
  std::string saved = old ? old : "";
  setenv("DRIFT_NUM_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::default_num_threads(), 3);
  setenv("DRIFT_NUM_THREADS", "not-a-number", 1);
  EXPECT_GE(ThreadPool::default_num_threads(), 1);
  if (old) {
    setenv("DRIFT_NUM_THREADS", saved.c_str(), 1);
  } else {
    unsetenv("DRIFT_NUM_THREADS");
  }
}

TEST(ThreadPoolTest, ResizeChangesThreadCount) {
  PoolSizeGuard guard;
  ThreadPool::instance().resize(2);
  EXPECT_EQ(ThreadPool::instance().num_threads(), 2);
  ThreadPool::instance().resize(5);
  EXPECT_EQ(ThreadPool::instance().num_threads(), 5);
}

// ---------------------------------------------------------------------
// Determinism: parallel results are bit-identical to serial at 1/2/8
// threads on random Laplace-distributed tensors.
// ---------------------------------------------------------------------

TEST(ParallelDeterminism, MatmulBitIdenticalAcrossThreadCounts) {
  PoolSizeGuard guard;
  const TensorF a = laplace_tensor(93, 177, 11);
  TensorF b = laplace_tensor(177, 61, 12);
  ThreadPool::instance().resize(1);
  const TensorF ref = nn::matmul(a, b);
  for (int threads : {2, 8}) {
    ThreadPool::instance().resize(threads);
    EXPECT_TRUE(bit_identical(ref, nn::matmul(a, b)))
        << "threads=" << threads;
  }
}

TEST(ParallelDeterminism, MatmulNtBitIdenticalAcrossThreadCounts) {
  PoolSizeGuard guard;
  const TensorF a = laplace_tensor(93, 177, 21);
  const TensorF w = laplace_tensor(61, 177, 22);
  ThreadPool::instance().resize(1);
  const TensorF ref = nn::matmul_nt(a, w);
  for (int threads : {2, 8}) {
    ThreadPool::instance().resize(threads);
    EXPECT_TRUE(bit_identical(ref, nn::matmul_nt(a, w)))
        << "threads=" << threads;
  }
}

TEST(ParallelDeterminism, MatmulAndMatmulNtAgree) {
  // Satellite: both kernels use the same double-accumulation policy, so
  // C = A*B and C = A*(B^T)^T must agree bit-for-bit (same k order).
  const TensorF a = laplace_tensor(37, 129, 31);
  const TensorF b = laplace_tensor(129, 43, 32);
  TensorF bt(Shape{43, 129});
  for (std::int64_t i = 0; i < 129; ++i) {
    for (std::int64_t j = 0; j < 43; ++j) bt(j, i) = b(i, j);
  }
  EXPECT_TRUE(bit_identical(nn::matmul(a, b), nn::matmul_nt(a, bt)));
}

TEST(ParallelDeterminism, QuantizeRowsBitIdenticalAcrossThreadCounts) {
  PoolSizeGuard guard;
  const TensorF x = laplace_tensor(257, 96, 41);
  core::SelectorConfig cfg;
  ThreadPool::instance().resize(1);
  const nn::QuantizedOperand ref = nn::quantize_rows(x, cfg, 0.05);
  for (int threads : {2, 8}) {
    ThreadPool::instance().resize(threads);
    const nn::QuantizedOperand got = nn::quantize_rows(x, cfg, 0.05);
    ASSERT_EQ(ref.rows.size(), got.rows.size());
    for (std::size_t r = 0; r < ref.rows.size(); ++r) {
      EXPECT_EQ(ref.rows[r].use_low, got.rows[r].use_low);
      EXPECT_EQ(ref.rows[r].choice.hc, got.rows[r].choice.hc);
      EXPECT_EQ(ref.rows[r].choice.lc, got.rows[r].choice.lc);
    }
    EXPECT_EQ(0, std::memcmp(ref.codes.data().data(),
                             got.codes.data().data(),
                             ref.codes.data().size() * sizeof(std::int32_t)))
        << "threads=" << threads;
  }
}

TEST(ParallelDeterminism, IntGemmBitIdenticalAcrossThreadCounts) {
  PoolSizeGuard guard;
  const TensorF a = laplace_tensor(65, 96, 51);
  const TensorF w = laplace_tensor(33, 96, 52);
  core::SelectorConfig cfg;
  ThreadPool::instance().resize(1);
  const auto qa = nn::quantize_rows(a, cfg, 0.05);
  const auto qw = nn::quantize_rows(w, cfg, 0.05);
  const TensorF ref = nn::int_gemm_nt(qa, qw);
  for (int threads : {2, 8}) {
    ThreadPool::instance().resize(threads);
    EXPECT_TRUE(bit_identical(ref, nn::int_gemm_nt(qa, qw)))
        << "threads=" << threads;
  }
}

TEST(ParallelDeterminism, Im2colConvPathBitIdenticalAcrossThreadCounts) {
  PoolSizeGuard guard;
  Rng rng(61);
  TensorF input(Shape{8, 19, 17});
  for (auto& v : input.data()) v = static_cast<float>(rng.laplace(0.05));
  const TensorF w = laplace_tensor(12, 8 * 3 * 3, 62);
  ThreadPool::instance().resize(1);
  const TensorF lowered_ref = nn::im2col(input, 3, 3, 2, 1);
  const TensorF ref = nn::matmul_nt(lowered_ref, w);
  for (int threads : {2, 8}) {
    ThreadPool::instance().resize(threads);
    const TensorF lowered = nn::im2col(input, 3, 3, 2, 1);
    EXPECT_TRUE(bit_identical(lowered_ref, lowered)) << "threads=" << threads;
    EXPECT_TRUE(bit_identical(ref, nn::matmul_nt(lowered, w)))
        << "threads=" << threads;
  }
}

}  // namespace
