// Serving-simulator test suite.
//
//   - Unit tests of the pieces: arrival kind parsing, the admission
//     queue's continuous-batching policy, the exact-quantile convention.
//   - Determinism: a fixed seed + fixed config produces byte-identical
//     serving metrics artifacts (Registry::to_json({"serve."})) and
//     identical per-request records at 1, 2 and 8 pool threads.
//   - Batch-vs-serial differential: with batch size 1 and zero
//     queueing, every request's mix, cycles and energy are bitwise
//     identical to running the offline pipeline on that request alone —
//     across thread counts and under forced-scalar SIMD dispatch.
//   - Golden artifact: a fixed-seed two-tenant run byte-compared
//     against tests/serve/golden/serve_metrics.json (regenerate with
//     DRIFT_OBS_UPDATE_GOLDEN=1), plus structural validation of the
//     per-request Chrome-trace tracks.
//   - Soak: a long fixed-seed run (default 2000 requests; the CI TSan
//     job sets DRIFT_SERVE_SOAK_REQUESTS=20000) asserting identical
//     artifacts at 1/2/8 threads.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "accel/drift_accel.hpp"
#include "nn/precision_mix.hpp"
#include "nn/simd/kernel_dispatch.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/simulator.hpp"
#include "util/thread_pool.hpp"

namespace drift {
namespace {

// ---------------------------------------------------------------------
// Unit: arrival kinds, exact quantile, admission queue.

TEST(ServeArrival, KindNamesRoundTrip) {
  for (const auto kind :
       {serve::ArrivalKind::kPoisson, serve::ArrivalKind::kBursty,
        serve::ArrivalKind::kDiurnal}) {
    EXPECT_EQ(serve::arrival_kind_from_string(serve::to_string(kind)), kind);
  }
  EXPECT_EQ(serve::arrival_kind_from_string("nonsense"),
            serve::ArrivalKind::kPoisson);
}

TEST(ServeQuantile, ExactRankConvention) {
  // rank = ceil(p * N), 1-based — the obs histogram convention.
  const std::vector<std::int64_t> v{40, 10, 30, 20};
  EXPECT_EQ(serve::exact_quantile(v, 0.25), 10);
  EXPECT_EQ(serve::exact_quantile(v, 0.50), 20);
  EXPECT_EQ(serve::exact_quantile(v, 0.75), 30);
  EXPECT_EQ(serve::exact_quantile(v, 0.99), 40);
  EXPECT_EQ(serve::exact_quantile(v, 0.999), 40);
  EXPECT_EQ(serve::exact_quantile({7}, 0.5), 7);
  EXPECT_EQ(serve::exact_quantile({}, 0.5), 0);
}

TEST(ServeBatcher, BatchTakesOnlyHeadTenantsEligibleRequests) {
  serve::AdmissionQueue queue;
  queue.push({0, 0, 0, 0});
  queue.push({1, 1, 0, 1});
  queue.push({2, 0, 1, 2});
  queue.push({3, 0, 2, 9});

  // Head is tenant 0; request id=3 has not arrived by now=5, and the
  // tenant-1 request never joins a tenant-0 batch.
  const auto batch = queue.pop_batch(5, 8);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].id, 0);
  EXPECT_EQ(batch[1].id, 2);

  // FIFO of the remainder is preserved: tenant 1 first, then id=3.
  const auto second = queue.pop_batch(10, 8);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].id, 1);
  EXPECT_EQ(second[0].tenant, 1);
  const auto third = queue.pop_batch(10, 8);
  ASSERT_EQ(third.size(), 1u);
  EXPECT_EQ(third[0].id, 3);
  EXPECT_TRUE(queue.empty());
}

TEST(ServeBatcher, BatchRespectsMaxBatch) {
  serve::AdmissionQueue queue;
  for (std::int64_t i = 0; i < 5; ++i) queue.push({i, 0, i, 0});
  const auto batch = queue.pop_batch(0, 2);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].id, 0);
  EXPECT_EQ(batch[1].id, 1);
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.head().id, 2);
}

// ---------------------------------------------------------------------
// Shared fixtures.

/// The fixed-seed two-tenant scenario used by the determinism and
/// golden tests: a bursty BERT-ish tenant and a diurnal CNN tenant
/// sharing one accelerator, enough load that batches actually form.
serve::ServeConfig two_tenant_config() {
  serve::ServeConfig config;
  config.exec.hw.array = core::ArrayDims{12, 12};
  config.max_batch = 4;

  serve::TenantSpec alpha;
  alpha.name = "alpha";
  alpha.workload = serve::serving_workload("tiny-bert");
  alpha.seed = 101;
  alpha.num_requests = 24;
  alpha.arrival.kind = serve::ArrivalKind::kBursty;
  alpha.arrival.mean_interarrival_cycles = 6000.0;
  config.tenants.push_back(alpha);

  serve::TenantSpec beta;
  beta.name = "beta";
  beta.workload = serve::serving_workload("tiny-cnn");
  beta.seed = 202;
  beta.num_requests = 16;
  beta.arrival.kind = serve::ArrivalKind::kDiurnal;
  beta.arrival.mean_interarrival_cycles = 9000.0;
  beta.arrival.diurnal_period_cycles = 65536.0;
  config.tenants.push_back(beta);
  return config;
}

struct RunOutput {
  std::string artifact;  ///< Registry::to_json({"serve."}); "" if OBS off
  serve::ServeResult result;
};

/// Runs one simulation from a clean registry/tracer on a pool of
/// `threads` workers.
RunOutput run_serving(const serve::ServeConfig& config, int threads,
                      bool trace = false) {
  util::ThreadPool& pool = util::ThreadPool::instance();
  pool.resize(threads);
  obs::Registry::global().reset();
  obs::Tracer::global().reset();
  obs::Tracer::global().set_enabled(trace);
  serve::Simulator sim(config, pool);
  RunOutput out;
  out.result = sim.run();
  obs::Tracer::global().set_enabled(false);
#ifndef DRIFT_OBS_OFF
  out.artifact = obs::Registry::global().to_json({"serve."});
#endif
  pool.resize(0);  // back to the DRIFT_NUM_THREADS / hardware default
  return out;
}

void expect_same_records(const serve::ServeResult& a,
                         const serve::ServeResult& b) {
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    const serve::RequestRecord& x = a.requests[i];
    const serve::RequestRecord& y = b.requests[i];
    EXPECT_EQ(x.id, y.id) << "request " << i;
    EXPECT_EQ(x.tenant, y.tenant) << "request " << i;
    EXPECT_EQ(x.local, y.local) << "request " << i;
    EXPECT_EQ(x.arrival, y.arrival) << "request " << i;
    EXPECT_EQ(x.start, y.start) << "request " << i;
    EXPECT_EQ(x.completion, y.completion) << "request " << i;
    EXPECT_EQ(x.batch_id, y.batch_id) << "request " << i;
    EXPECT_EQ(x.batch_size, y.batch_size) << "request " << i;
    EXPECT_DOUBLE_EQ(x.energy_pj, y.energy_pj) << "request " << i;
  }
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.busy_cycles, b.busy_cycles);
  EXPECT_EQ(a.makespan_cycles, b.makespan_cycles);
  EXPECT_DOUBLE_EQ(a.total_energy_pj, b.total_energy_pj);
}

// ---------------------------------------------------------------------
// Determinism: fixed seed + fixed config => byte-identical artifacts at
// any thread count.

TEST(ServeDeterminism, ArtifactByteIdenticalAcrossThreadCounts) {
  const serve::ServeConfig config = two_tenant_config();
  const RunOutput base = run_serving(config, 1);
  ASSERT_FALSE(base.result.requests.empty());
  for (const int threads : {2, 8}) {
    const RunOutput other = run_serving(config, threads);
    expect_same_records(base.result, other.result);
#ifndef DRIFT_OBS_OFF
    EXPECT_EQ(base.artifact, other.artifact)
        << "serving metrics artifact differs between 1 and " << threads
        << " pool threads";
#endif
  }
}

TEST(ServeDeterminism, RepeatRunIsBitStable) {
  const serve::ServeConfig config = two_tenant_config();
  const RunOutput a = run_serving(config, 2);
  const RunOutput b = run_serving(config, 2);
  expect_same_records(a.result, b.result);
  EXPECT_EQ(a.artifact, b.artifact);
}

// ---------------------------------------------------------------------
// Sanity of the event-loop accounting under real load.

TEST(ServeSimulator, AccountingIsConsistent) {
  serve::ServeConfig config = two_tenant_config();
  // Push the load up so continuous batching actually coalesces.
  config.tenants[0].arrival.mean_interarrival_cycles = 500.0;
  config.tenants[1].arrival.mean_interarrival_cycles = 700.0;
  const RunOutput out = run_serving(config, 2);
  const serve::ServeResult& r = out.result;

  ASSERT_EQ(r.requests.size(), 40u);
  EXPECT_LT(r.batches, static_cast<std::int64_t>(r.requests.size()))
      << "under heavy load some batches must hold more than one request";
  EXPECT_LE(r.busy_cycles, r.makespan_cycles);
  EXPECT_GT(r.utilization(), 0.0);
  EXPECT_LE(r.utilization(), 1.0);

  double energy = 0.0;
  std::int64_t max_batch_seen = 0;
  for (const serve::RequestRecord& rec : r.requests) {
    EXPECT_GE(rec.wait(), 0);
    EXPECT_GT(rec.service(), 0);
    EXPECT_EQ(rec.latency(), rec.wait() + rec.service());
    EXPECT_GE(rec.batch_id, 0);
    EXPECT_LT(rec.batch_id, r.batches);
    EXPECT_GE(rec.batch_size, 1);
    EXPECT_LE(rec.batch_size, config.max_batch);
    max_batch_seen = std::max(max_batch_seen, rec.batch_size);
    energy += rec.energy_pj;
  }
  EXPECT_GT(max_batch_seen, 1);
  EXPECT_NEAR(energy, r.total_energy_pj, 1e-6 * r.total_energy_pj);

  // The overall SLO summary matches the exact quantiles of the records.
  std::vector<std::int64_t> latencies;
  for (const serve::RequestRecord& rec : r.requests) {
    latencies.push_back(rec.latency());
  }
  EXPECT_EQ(r.overall.count, 40);
  EXPECT_EQ(r.overall.p50_cycles, serve::exact_quantile(latencies, 0.50));
  EXPECT_EQ(r.overall.p99_cycles, serve::exact_quantile(latencies, 0.99));
  EXPECT_EQ(r.overall.p999_cycles, serve::exact_quantile(latencies, 0.999));
  ASSERT_EQ(r.per_tenant.size(), 2u);
  EXPECT_EQ(r.per_tenant[0].count + r.per_tenant[1].count, r.overall.count);
}

// ---------------------------------------------------------------------
// Batch-vs-serial differential: batch=1 + zero queueing pins serving
// bitwise to the offline pipeline.

/// One tenant, arrivals spaced far beyond any service time => every
/// batch holds exactly one request and nobody waits.
serve::ServeConfig sparse_config() {
  serve::ServeConfig config;
  config.exec.hw.array = core::ArrayDims{12, 12};
  config.max_batch = 8;  // batching allowed; sparsity keeps batches at 1
  serve::TenantSpec tenant;
  tenant.name = "solo";
  tenant.workload = serve::serving_workload("tiny-bert");
  tenant.seed = 7;
  tenant.num_requests = 12;
  tenant.arrival.mean_interarrival_cycles = 1.0e7;
  config.tenants.push_back(tenant);
  return config;
}

void check_differential(int threads) {
  const serve::ServeConfig config = sparse_config();
  util::ThreadPool& pool = util::ThreadPool::instance();
  pool.resize(threads);
  obs::Registry::global().reset();
  serve::Simulator sim(config, pool);

  // The tenant's canonical mix is bitwise the offline build_mixes
  // result (same seed, same per-layer streams).
  const nn::WorkloadSpec& spec = sim.executor().tenant_spec(0);
  const nn::MixConfig mix_cfg =
      sim.executor().mix_config(config.tenants[0]);
  const auto offline_mixes = nn::build_mixes(spec, mix_cfg);
  const auto& canonical = sim.executor().request_mixes(0, 0);
  ASSERT_EQ(offline_mixes.size(), spec.layers.size());
  // (request 0 has its own pattern; compare structure via a fresh
  // canonical-only executor instead)
  {
    serve::ServeConfig shared = config;
    shared.tenants[0].unique_mix_per_request = false;
    serve::Simulator shared_sim(shared, pool);
    const auto& shared_canonical = shared_sim.executor().request_mixes(0, 0);
    ASSERT_EQ(shared_canonical.size(), offline_mixes.size());
    for (std::size_t li = 0; li < offline_mixes.size(); ++li) {
      EXPECT_EQ(shared_canonical[li].row_is_low, offline_mixes[li].row_is_low)
          << "layer " << li;
      EXPECT_EQ(shared_canonical[li].work.m_low, offline_mixes[li].work.m_low)
          << "layer " << li;
      EXPECT_EQ(shared_canonical[li].work.n_low, offline_mixes[li].work.n_low)
          << "layer " << li;
    }
  }
  ASSERT_EQ(canonical.size(), spec.layers.size());

  const serve::ServeResult result = sim.run();
  accel::DriftAccelModel offline(config.exec.hw,
                                 config.exec.drift_policy);
  for (const serve::RequestRecord& rec : result.requests) {
    EXPECT_EQ(rec.batch_size, 1) << "request " << rec.id;
    EXPECT_EQ(rec.wait(), 0) << "request " << rec.id;

    const accel::RunResult serial =
        offline.run(spec, sim.executor().request_mixes(0, rec.local));
    EXPECT_EQ(rec.service(), serial.cycles) << "request " << rec.id;
    EXPECT_DOUBLE_EQ(rec.energy_pj, serial.energy.total_pj())
        << "request " << rec.id;

    // The full batch run agrees layer by layer, not just in total.
    const serve::BatchResult batched =
        sim.executor().execute(0, {rec.local});
    ASSERT_EQ(batched.run.layers.size(), serial.layers.size());
    for (std::size_t li = 0; li < serial.layers.size(); ++li) {
      EXPECT_EQ(batched.run.layers[li].cycles, serial.layers[li].cycles)
          << "request " << rec.id << " layer " << li;
      EXPECT_EQ(batched.run.layers[li].stall_cycles,
                serial.layers[li].stall_cycles)
          << "request " << rec.id << " layer " << li;
      EXPECT_EQ(batched.run.layers[li].dram_bytes,
                serial.layers[li].dram_bytes)
          << "request " << rec.id << " layer " << li;
    }
  }
  pool.resize(0);
}

TEST(ServeDifferential, BatchOneMatchesOfflineAtOneThread) {
  check_differential(1);
}
TEST(ServeDifferential, BatchOneMatchesOfflineAtTwoThreads) {
  check_differential(2);
}
TEST(ServeDifferential, BatchOneMatchesOfflineAtEightThreads) {
  check_differential(8);
}

TEST(ServeDifferential, BatchOneMatchesOfflineUnderForcedScalar) {
  nn::simd::set_force_scalar(true);
  check_differential(2);
  nn::simd::set_force_scalar(false);
}

// ---------------------------------------------------------------------
// Golden artifact + per-request Chrome-trace tracks.

std::string golden_path() {
  return std::string(DRIFT_SERVE_GOLDEN_DIR) + "/serve_metrics.json";
}

std::string read_file_or_empty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

#ifndef DRIFT_OBS_OFF

TEST(ServeGolden, MetricsJsonMatchesGolden) {
  const RunOutput out = run_serving(two_tenant_config(), 2, /*trace=*/true);
  if (std::getenv("DRIFT_OBS_UPDATE_GOLDEN") != nullptr) {
    ASSERT_TRUE(obs::write_file(golden_path(), out.artifact));
    GTEST_SKIP() << "golden regenerated at " << golden_path();
  }
  const std::string golden = read_file_or_empty(golden_path());
  ASSERT_FALSE(golden.empty())
      << "missing golden " << golden_path()
      << " — regenerate with DRIFT_OBS_UPDATE_GOLDEN=1";
  EXPECT_EQ(out.artifact, golden)
      << "serving metrics artifact drifted from the golden; if the "
         "change is intentional, regenerate with DRIFT_OBS_UPDATE_GOLDEN=1";
}

/// Pulls the integer value of `"key": <n>` out of one serialized trace
/// event line; `fallback` when the key is absent.
std::int64_t event_field(const std::string& line, const std::string& key,
                         std::int64_t fallback) {
  const std::string marker = "\"" + key + "\": ";
  const std::size_t pos = line.find(marker);
  if (pos == std::string::npos) return fallback;
  return std::atoll(line.c_str() + pos + marker.size());
}

TEST(ServeGolden, ChromeTraceCarriesPerRequestTracks) {
  const serve::ServeConfig config = two_tenant_config();
  run_serving(config, 2, /*trace=*/true);
  const std::string json = obs::Tracer::global().to_chrome_json();
  ASSERT_EQ(json.rfind("{\"traceEvents\": [", 0), 0u);

  int request_tracks = 0, wait_events = 0, exec_events = 0;
  bool saw_alpha = false, saw_beta = false;
  std::istringstream lines(json);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("{\"name\": ", 0) != 0) continue;
    const std::size_t ph_pos = line.find("\"ph\": \"");
    ASSERT_NE(ph_pos, std::string::npos) << line;
    const char ph = line[ph_pos + 7];
    if (ph == 'M' && line.find("\"req/") != std::string::npos) {
      ++request_tracks;
      saw_alpha = saw_alpha || line.find("req/alpha/") != std::string::npos;
      saw_beta = saw_beta || line.find("req/beta/") != std::string::npos;
    }
    if (ph == 'X') {
      EXPECT_GE(event_field(line, "dur", -1), 0) << line;
      EXPECT_EQ(event_field(line, "pid", -1), 1) << line;
      if (line.rfind("{\"name\": \"wait\"", 0) == 0) ++wait_events;
      if (line.rfind("{\"name\": \"exec\"", 0) == 0) ++exec_events;
    }
  }
  // One track per in-flight request (40 requests, cap 128), every
  // request an exec span, waits only where queueing happened.
  EXPECT_EQ(request_tracks, 40);
  EXPECT_TRUE(saw_alpha);
  EXPECT_TRUE(saw_beta);
  EXPECT_EQ(exec_events, 40);
  EXPECT_GE(wait_events, 1);
  EXPECT_LE(wait_events, 40);
}

TEST(ServeGolden, TraceCapDropsAreCounted) {
  serve::ServeConfig config = two_tenant_config();
  config.trace_request_cap = 5;
  run_serving(config, 2, /*trace=*/true);
  EXPECT_EQ(
      obs::Registry::global().counter("serve.trace_dropped")->value(),
      40 - 5);
}

#else  // DRIFT_OBS_OFF

TEST(ServeGolden, MetricsJsonMatchesGolden) {
  GTEST_SKIP() << "instrumentation compiled out (DRIFT_OBS_OFF)";
}
TEST(ServeGolden, ChromeTraceCarriesPerRequestTracks) {
  GTEST_SKIP() << "instrumentation compiled out (DRIFT_OBS_OFF)";
}
TEST(ServeGolden, TraceCapDropsAreCounted) {
  GTEST_SKIP() << "instrumentation compiled out (DRIFT_OBS_OFF)";
}

#endif  // DRIFT_OBS_OFF

// ---------------------------------------------------------------------
// Soak: long fixed-seed run, artifacts identical at 1/2/8 threads.
// The CI thread-sanitizer job raises the request count to 20000 via
// DRIFT_SERVE_SOAK_REQUESTS.

TEST(ServeSoak, IdenticalArtifactsAcrossThreads) {
  std::int64_t requests = 2000;
  if (const char* v = std::getenv("DRIFT_SERVE_SOAK_REQUESTS")) {
    const long long n = std::atoll(v);
    if (n > 0) requests = n;
  }
  serve::ServeConfig config;
  config.exec.hw.array = core::ArrayDims{8, 8};
  config.max_batch = 8;
  serve::TenantSpec tenant;
  tenant.name = "soak";
  tenant.workload = serve::serving_workload("tiny-cnn");
  tenant.seed = 31337;
  tenant.num_requests = requests;
  tenant.arrival.kind = serve::ArrivalKind::kBursty;
  tenant.arrival.mean_interarrival_cycles = 1500.0;
  config.tenants.push_back(tenant);

  const RunOutput base = run_serving(config, 1);
  ASSERT_EQ(base.result.requests.size(),
            static_cast<std::size_t>(requests));
  for (const int threads : {2, 8}) {
    const RunOutput other = run_serving(config, threads);
    expect_same_records(base.result, other.result);
#ifndef DRIFT_OBS_OFF
    ASSERT_EQ(base.artifact, other.artifact)
        << "soak artifact differs between 1 and " << threads
        << " pool threads";
#endif
  }
}

}  // namespace
}  // namespace drift
