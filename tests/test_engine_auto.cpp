// Tests for the QuantEngine's automatic-threshold execution mode and
// its interaction with the proxies' behavior guarantees.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/quant_engine.hpp"
#include "nn/synthetic.hpp"
#include "util/rng.hpp"

namespace drift::nn {
namespace {

TensorF sample_rows(std::uint64_t seed) {
  Rng rng(seed);
  return synth_rows(rng, 96, 64, llm_profile());
}

TEST(EngineAuto, CoverageMonotoneInBudget) {
  const TensorF x = sample_rows(501);
  double prev = -1.0;
  for (double budget : {0.0, 0.005, 0.02, 0.1}) {
    QuantEngine::Config cfg;
    cfg.mode = QuantMode::kDrift;
    cfg.noise_budget = budget;
    QuantEngine engine(cfg);
    const auto r = engine.process_activation_rows(x);
    EXPECT_GE(r.low_fraction, prev) << "budget " << budget;
    prev = r.low_fraction;
  }
}

TEST(EngineAuto, ZeroBudgetEqualsInt8Rendering) {
  // At budget 0 only free (lc = 0) conversions happen, which are
  // value-identical to INT8: the two renderings must agree everywhere.
  const TensorF x = sample_rows(503);
  QuantEngine::Config int8_cfg;
  int8_cfg.mode = QuantMode::kStaticInt8;
  QuantEngine::Config drift_cfg;
  drift_cfg.mode = QuantMode::kDrift;
  drift_cfg.noise_budget = 0.0;
  QuantEngine int8_engine(int8_cfg);
  QuantEngine drift_engine(drift_cfg);
  const auto r8 = int8_engine.process_activation_rows(x);
  const auto rd = drift_engine.process_activation_rows(x);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_FLOAT_EQ(rd.effective.at(i), r8.effective.at(i)) << i;
  }
  EXPECT_GT(rd.low_fraction, 0.0);  // and it still finds free rows
}

TEST(EngineAuto, FixedThresholdModeStillAvailable) {
  const TensorF x = sample_rows(505);
  QuantEngine::Config cfg;
  cfg.mode = QuantMode::kDrift;
  cfg.auto_threshold = false;
  cfg.drift.density_threshold = 1e12;  // rejects every density check
  QuantEngine engine(cfg);
  const auto r = engine.process_activation_rows(x);
  // Only the trivially-zero sub-tensors can slip through at an absurd
  // fixed δ; essentially everything stays high.
  EXPECT_LT(r.low_fraction, 0.05);
}

TEST(EngineAuto, ExcessErrorRespectsBudget) {
  // Measured excess MSE (vs INT8) of the rendering must stay within
  // the configured budget times the signal variance.
  const TensorF x = sample_rows(507);
  QuantEngine::Config int8_cfg;
  int8_cfg.mode = QuantMode::kStaticInt8;
  QuantEngine int8_engine(int8_cfg);
  const auto r8 = int8_engine.process_activation_rows(x);

  const double budget = 0.02;
  QuantEngine::Config cfg;
  cfg.mode = QuantMode::kDrift;
  cfg.noise_budget = budget;
  QuantEngine engine(cfg);
  const auto rd = engine.process_activation_rows(x);

  double excess = 0.0, signal = 0.0, mean = 0.0;
  for (std::int64_t i = 0; i < x.numel(); ++i) mean += x.at(i);
  mean /= static_cast<double>(x.numel());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const double e8 = r8.effective.at(i) - x.at(i);
    const double ed = rd.effective.at(i) - x.at(i);
    excess += ed * ed - e8 * e8;
    signal += (x.at(i) - mean) * (x.at(i) - mean);
  }
  // The budget is enforced on the *predicted* uniform-rounding noise;
  // allow 2x slack for the prediction-vs-realization gap.
  EXPECT_LE(excess, 2.0 * budget * signal);
}

TEST(EngineAuto, RecordsAccumulateAndClear) {
  const TensorF x = sample_rows(509);
  QuantEngine::Config cfg;
  cfg.mode = QuantMode::kDrift;
  QuantEngine engine(cfg);
  engine.record("a", 4, 4, 4, 0.5, 0.0);
  engine.record("b", 8, 8, 8, 0.25, 0.0);
  EXPECT_EQ(engine.records().size(), 2u);
  engine.clear_records();
  EXPECT_TRUE(engine.records().empty());
}

class EngineBudgetSweep : public ::testing::TestWithParam<double> {};

TEST_P(EngineBudgetSweep, RenderingErrorBoundedBySelectedSteps) {
  // Property: per element, |rendered - x| <= (step + Δ)/2 where step is
  // the step of the row's selected precision.
  const double budget = GetParam();
  Rng rng(511);
  const TensorF x = synth_rows(rng, 48, 32, bert_profile());
  QuantEngine::Config cfg;
  cfg.mode = QuantMode::kDrift;
  cfg.noise_budget = budget;
  QuantEngine engine(cfg);
  const auto r = engine.process_activation_rows(x);
  float max_abs = 0.0f;
  for (float v : x.data()) max_abs = std::max(max_abs, std::abs(v));
  const double delta = max_abs / 127.0;
  // The coarsest possible step is 16Δ (lc = 4).
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_LE(std::abs(r.effective.at(i) - x.at(i)),
              0.5 * (16 * delta + delta) + 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, EngineBudgetSweep,
                         ::testing::Values(0.0, 0.01, 0.05, 0.25));

}  // namespace
}  // namespace drift::nn
