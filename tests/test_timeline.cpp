// Tests for the double-buffered execution timeline and the split-array
// cycle-level cross-check of the scheduler's makespans.
#include <gtest/gtest.h>

#include "accel/timeline.hpp"
#include "core/scheduler.hpp"
#include "systolic/cycle_sim.hpp"
#include "util/assert.hpp"

namespace drift {
namespace {

using accel::TimelineLayer;
using accel::build_timeline;

TEST(Timeline, ComputeBoundChainFullyOverlaps) {
  // Every layer's fetch fits under the previous layer's compute.
  std::vector<TimelineLayer> layers = {
      {"a", 100, 100}, {"b", 100, 50}, {"c", 100, 50}};
  const auto t = build_timeline(layers);
  // Layer a: fetch 0-100, compute 100-200; b fetches 100-150, computes
  // 200-300; c fetches 200-250, computes 300-400.
  EXPECT_EQ(t.total_cycles, 400);
  EXPECT_EQ(t.entries[1].compute_start, 200);
  EXPECT_EQ(t.entries[2].compute_start, 300);
}

TEST(Timeline, MemoryBoundLayerExposesDram) {
  std::vector<TimelineLayer> layers = {{"a", 10, 100}, {"b", 10, 100}};
  const auto t = build_timeline(layers);
  // a: fetch 0-100, compute 100-110; b: fetch 100-200, compute 200-210.
  EXPECT_EQ(t.total_cycles, 210);
  EXPECT_LT(t.overlap_fraction, 0.2);
}

TEST(Timeline, TotalBoundedBySumAndMax) {
  std::vector<TimelineLayer> layers = {
      {"a", 70, 30}, {"b", 20, 90}, {"c", 50, 50}, {"d", 5, 5}};
  const auto t = build_timeline(layers);
  std::int64_t sum_both = 0, sum_max = 0;
  for (const auto& l : layers) {
    sum_both += l.compute_cycles + l.dram_cycles;
    sum_max += std::max(l.compute_cycles, l.dram_cycles);
  }
  EXPECT_LE(t.total_cycles, sum_both);
  // The pipeline can never beat the compute-plus-first-fetch bound.
  std::int64_t compute_sum = 0;
  for (const auto& l : layers) compute_sum += l.compute_cycles;
  EXPECT_GE(t.total_cycles, compute_sum + layers[0].dram_cycles);
  EXPECT_GE(sum_max + layers[0].dram_cycles, t.total_cycles -
            layers[1].dram_cycles);  // loose sanity on the overlap model
}

TEST(Timeline, OverlapFractionBounds) {
  std::vector<TimelineLayer> layers = {{"a", 1000, 10}, {"b", 1000, 10}};
  const auto t = build_timeline(layers);
  EXPECT_GT(t.overlap_fraction, 0.4);  // second fetch fully hidden
  EXPECT_LE(t.overlap_fraction, 1.0);
}

TEST(Timeline, EmptyAndSingleLayer) {
  EXPECT_EQ(build_timeline({}).total_cycles, 0);
  const auto t = build_timeline({{"only", 42, 13}});
  EXPECT_EQ(t.total_cycles, 55);
  EXPECT_DOUBLE_EQ(t.overlap_fraction, 0.0);  // nothing to hide under
}

TEST(Timeline, GanttRendersOneRowPerLayer) {
  const auto t = build_timeline({{"layer0", 50, 50}, {"layer1", 50, 25}});
  const std::string g = t.gantt(32);
  EXPECT_EQ(std::count(g.begin(), g.end(), '\n'), 2);
  EXPECT_NE(g.find('#'), std::string::npos);
  EXPECT_NE(g.find('-'), std::string::npos);
}

TEST(Timeline, NegativeCyclesThrow) {
  EXPECT_THROW(build_timeline({{"bad", -1, 0}}), check_error);
}

// --- split-array cycle-level cross-check ---------------------------------

/// Runs one quadrant's workload through the scalar cycle simulator in
/// bit-packed form: a (rows x cols) BG quadrant at (pa, pw) behaves
/// like a scalar array of the same dims on a GEMM with
/// K' = ceil(pa K / 4), N' = ceil(pw N / 16) (Equation 7's packing).
std::int64_t simulate_quadrant(const core::GemmDims& dims, int pa, int pw,
                               const core::ArrayDims& quad) {
  if (dims.empty()) return 0;
  const std::int64_t kp = (static_cast<std::int64_t>(pa) * dims.K + 3) / 4;
  const std::int64_t np = (static_cast<std::int64_t>(pw) * dims.N + 15) / 16;
  TensorI32 a(Shape{dims.M, kp}, 1);
  TensorI32 w(Shape{kp, np}, 1);
  return systolic::simulate_gemm(a, w, quad).cycles;
}

TEST(SplitCrossCheck, CycleSimMatchesSchedulerMakespans) {
  // The paper cross-verifies its simulator against RTL; we cross-verify
  // the scheduler's Eq. 7 quadrant latencies against the cycle-level
  // simulation of each split sub-array.
  core::LayerWork work;
  work.m_high = 24;
  work.m_low = 104;
  work.n_high = 40;
  work.n_low = 152;
  work.k = 96;
  const core::ArrayDims total{12, 16};
  const auto split = core::schedule_greedy(work, total);

  const core::GemmDims hh{work.m_high, work.k, work.n_high};
  const core::GemmDims hl{work.m_high, work.k, work.n_low};
  const core::GemmDims lh{work.m_low, work.k, work.n_high};
  const core::GemmDims ll{work.m_low, work.k, work.n_low};
  const std::int64_t sim_hh =
      simulate_quadrant(hh, 8, 8, {split.r, split.c});
  const std::int64_t sim_hl =
      simulate_quadrant(hl, 8, 4, {split.r, total.cols - split.c});
  const std::int64_t sim_lh =
      simulate_quadrant(lh, 4, 8, {total.rows - split.r, split.c});
  const std::int64_t sim_ll =
      simulate_quadrant(ll, 4, 4,
                        {total.rows - split.r, total.cols - split.c});

  EXPECT_EQ(sim_hh, split.latency[0]);
  EXPECT_EQ(sim_hl, split.latency[1]);
  EXPECT_EQ(sim_lh, split.latency[2]);
  EXPECT_EQ(sim_ll, split.latency[3]);
  EXPECT_EQ(std::max({sim_hh, sim_hl, sim_lh, sim_ll}), split.makespan);
}

}  // namespace
}  // namespace drift
