// Tests for the model zoo workload extraction and precision-mix
// generation.
#include <gtest/gtest.h>

#include "nn/precision_mix.hpp"
#include "nn/workload.hpp"

namespace drift::nn {
namespace {

TEST(Workload, ResNet18ShapesAndMacs) {
  const WorkloadSpec spec = make_resnet18();
  EXPECT_EQ(spec.model, "ResNet18");
  // conv1: 112^2 x (3*49) x 64.
  const LayerGemm& conv1 = spec.layers.front();
  EXPECT_EQ(conv1.dims.M, 112 * 112);
  EXPECT_EQ(conv1.dims.K, 147);
  EXPECT_EQ(conv1.dims.N, 64);
  EXPECT_EQ(conv1.kernel, 7);
  // ImageNet ResNet18 is ~1.8 GMACs.
  const double gmacs = static_cast<double>(spec.total_macs()) / 1e9;
  EXPECT_GT(gmacs, 1.5);
  EXPECT_LT(gmacs, 2.2);
}

TEST(Workload, ResNet50Macs) {
  const WorkloadSpec spec = make_resnet50();
  // ~4.1 GMACs for ResNet50.
  const double gmacs = static_cast<double>(spec.total_macs()) / 1e9;
  EXPECT_GT(gmacs, 3.5);
  EXPECT_LT(gmacs, 4.7);
}

TEST(Workload, VitBMacs) {
  const WorkloadSpec spec = make_vit_b16();
  // ViT-B/16 at 224: ~17.6 GMACs per image (counting attention
  // products); the workload runs the encoder at batch 8.
  const double gmacs = static_cast<double>(spec.total_macs()) / 8.0 / 1e9;
  EXPECT_GT(gmacs, 15.0);
  EXPECT_LT(gmacs, 20.0);
}

TEST(Workload, DeitSIsSmallerThanVitB) {
  EXPECT_LT(make_deit_s().total_macs(), make_vit_b16().total_macs() / 3);
}

TEST(Workload, BertLayersHaveBatchedSeqRows) {
  const WorkloadSpec spec = make_bert_base(128);
  for (const auto& l : spec.layers) {
    if (l.kind == LayerKind::kQkvProj) {
      EXPECT_EQ(l.dims.M, 8 * 128);  // batch 8 x sequence 128
      EXPECT_EQ(l.dims.K, 768);
      EXPECT_EQ(l.dims.N, 3 * 768);
    }
  }
}

TEST(Workload, Gpt2XlDimensions) {
  const WorkloadSpec spec = make_gpt2_xl(1024);
  bool saw_ffn = false;
  for (const auto& l : spec.layers) {
    if (l.kind == LayerKind::kFfn && l.dims.N == 6400) {
      saw_ffn = true;
      EXPECT_EQ(l.dims.K, 1600);
      EXPECT_EQ(l.repeat, 48);
    }
  }
  EXPECT_TRUE(saw_ffn);
}

TEST(Workload, AttentionScoreRepeatsPerHead) {
  const WorkloadSpec spec = make_vit_b16();
  for (const auto& l : spec.layers) {
    if (l.kind == LayerKind::kAttnScore) {
      EXPECT_EQ(l.dims.M, 197);
      EXPECT_EQ(l.dims.N, 197);
      EXPECT_EQ(l.dims.K, 64);
      EXPECT_EQ(l.repeat, 12 * 12 * 8);  // blocks x heads x batch
    }
  }
}

TEST(Workload, PaperSetHasSevenModels) {
  const auto workloads = paper_workloads();
  ASSERT_EQ(workloads.size(), 7u);
  EXPECT_EQ(workloads[0].model, "ResNet18");
  EXPECT_EQ(workloads[6].model, "OPT-6.7B");
}

TEST(Workload, FamilyProfilesDiffer) {
  const auto cnn = make_resnet18();
  const auto llm = make_opt_6p7b();
  EXPECT_GT(cnn.act_profile.correlation, llm.act_profile.correlation);
  EXPECT_GT(llm.act_profile.outlier_scale, cnn.act_profile.outlier_scale);
}

TEST(Mix, Int8MixIsAllHigh) {
  MixConfig cfg;
  cfg.algo = MixAlgorithm::kStaticInt8;
  const auto mixes = build_mixes(make_deit_s(), cfg);
  for (const auto& m : mixes) {
    EXPECT_EQ(m.work.m_low, 0);
    EXPECT_EQ(m.work.n_low, 0);
    EXPECT_DOUBLE_EQ(m.act_low_fraction, 0.0);
  }
}

TEST(Mix, DriftProducesHighLowFractionOnLaplaceProfiles) {
  MixConfig cfg;
  cfg.algo = MixAlgorithm::kDrift;
  cfg.drift.density_threshold = 0.5;
  const auto mixes = build_mixes(make_bert_base(128), cfg);
  const double low = overall_act_low_fraction(mixes);
  EXPECT_GT(low, 0.55);
  EXPECT_LE(low, 1.0);
}

TEST(Mix, DrqWeightsStayHigh) {
  MixConfig cfg;
  cfg.algo = MixAlgorithm::kDrq;
  const auto mixes = build_mixes(make_resnet18(), cfg);
  for (const auto& m : mixes) {
    EXPECT_EQ(m.work.n_low, 0) << m.layer.name;
  }
}

TEST(Mix, RowPatternLengthMatchesM) {
  MixConfig cfg;
  cfg.algo = MixAlgorithm::kDrift;
  const auto mixes = build_mixes(make_deit_s(), cfg);
  for (const auto& m : mixes) {
    EXPECT_EQ(static_cast<std::int64_t>(m.row_is_low.size()), m.layer.dims.M);
    EXPECT_EQ(m.work.m_low + m.work.m_high, m.layer.dims.M);
    EXPECT_EQ(m.work.n_low + m.work.n_high, m.layer.dims.N);
  }
}

TEST(Mix, DeterministicForSameSeed) {
  MixConfig cfg;
  cfg.algo = MixAlgorithm::kDrift;
  cfg.seed = 99;
  const auto a = build_mixes(make_deit_s(), cfg);
  const auto b = build_mixes(make_deit_s(), cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].work.m_low, b[i].work.m_low);
    EXPECT_EQ(a[i].row_is_low, b[i].row_is_low);
  }
}

TEST(Mix, CnnPatternsAreMoreContiguousThanLlm) {
  MixConfig cfg;
  cfg.algo = MixAlgorithm::kDrift;
  auto switches_per_row = [&](const WorkloadSpec& spec) {
    const auto mixes = build_mixes(spec, cfg);
    double total_switches = 0.0, total_rows = 0.0;
    for (const auto& m : mixes) {
      for (std::size_t i = 1; i < m.row_is_low.size(); ++i) {
        if (m.row_is_low[i] != m.row_is_low[i - 1]) total_switches += 1.0;
      }
      total_rows += static_cast<double>(m.row_is_low.size());
    }
    return total_switches / total_rows;
  };
  EXPECT_LT(switches_per_row(make_resnet18()),
            switches_per_row(make_bert_base(512)));
}

TEST(Mix, DriftDynamicWeightsToggle) {
  MixConfig cfg;
  cfg.algo = MixAlgorithm::kDrift;
  cfg.dynamic_weights = false;
  const auto mixes = build_mixes(make_deit_s(), cfg);
  for (const auto& m : mixes) {
    const bool attn = m.layer.kind == LayerKind::kAttnScore ||
                      m.layer.kind == LayerKind::kAttnContext;
    if (!attn) {
      EXPECT_EQ(m.work.n_low, 0) << m.layer.name;
    }
  }
}

}  // namespace
}  // namespace drift::nn
