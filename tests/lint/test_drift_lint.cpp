// Tests for tools/lint/drift_lint against the fixture corpus in
// tests/lint/fixtures (one file per rule with known violation lines, a
// clean file, a fully suppressed file, and suppression-hygiene cases).
//
// The linter's JSON output is asserted byte-for-byte against
// expected.json: any rule change that shifts a line number, message, or
// ordering must update the golden file consciously.
//
// Paths are injected by tests/lint/CMakeLists.txt:
//   DRIFT_LINT_BIN             built drift_lint binary
//   DRIFT_LINT_FIXTURES        fixture corpus root
//   DRIFT_LINT_EXPECTED        golden JSON for the full corpus
//   DRIFT_LINT_EXPECTED_SARIF  golden SARIF 2.1.0 for the full corpus
//   DRIFT_LINT_RATCHET_FIXTURE per-rule budgets equal to the corpus counts
//   DRIFT_LINT_RATCHET_ZERO    the committed all-zero repo baseline
//   DRIFT_LINT_REPO_ROOT       the real repository root (self-analysis)
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  ///< stdout only; stderr goes to the test log
};

RunResult run_lint(const std::string& args) {
  const std::string cmd = std::string(DRIFT_LINT_BIN) + " " + args;
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "failed to spawn: " << cmd;
  RunResult result;
  if (!pipe) return result;
  char buf[4096];
  while (std::size_t n = fread(buf, 1, sizeof buf, pipe)) {
    result.output.append(buf, n);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string fixtures_root() { return DRIFT_LINT_FIXTURES; }

TEST(DriftLint, JsonOutputMatchesGoldenFileExactly) {
  const RunResult r =
      run_lint("--root " + fixtures_root() + " --format=json src tools tests");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(r.output, read_file(DRIFT_LINT_EXPECTED));
}

TEST(DriftLint, SarifOutputMatchesGoldenFileExactly) {
  const RunResult r =
      run_lint("--root " + fixtures_root() + " --format=sarif src tools tests");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(r.output, read_file(DRIFT_LINT_EXPECTED_SARIF));
}

TEST(DriftLint, RatchetWithinBudgetExitsZero) {
  // The fixture ratchet grants exactly the corpus's per-rule counts, so
  // the run reports violations but the gate passes.
  const RunResult r = run_lint("--root " + fixtures_root() +
                               " --format=json --ratchet " +
                               DRIFT_LINT_RATCHET_FIXTURE +
                               " src tools tests 2>/dev/null");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(DriftLint, RatchetExceededExitsOne) {
  // The committed repo baseline is all zeros; the fixture corpus blows
  // through every budget.
  const RunResult r = run_lint("--root " + fixtures_root() +
                               " --format=json --ratchet " +
                               DRIFT_LINT_RATCHET_ZERO +
                               " src tools tests 2>/dev/null");
  EXPECT_EQ(r.exit_code, 1) << r.output;
}

TEST(DriftLint, MissingRatchetFileExitsTwo) {
  const RunResult r =
      run_lint("--root " + fixtures_root() +
               " --ratchet /nonexistent/ratchet.json src 2>/dev/null");
  EXPECT_EQ(r.exit_code, 2);
}

TEST(DriftLint, SelfAnalysisIsClean) {
  // The analyzer must hold itself to its own rules.
  const RunResult r =
      run_lint(std::string("--root ") + DRIFT_LINT_REPO_ROOT + " tools/lint");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(DriftLint, CleanDirectoryExitsZero) {
  // fixtures/tests holds only a clean header.
  const RunResult r =
      run_lint("--root " + fixtures_root() + " --format=json tests");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("\"violation_count\": 0"), std::string::npos)
      << r.output;
}

TEST(DriftLint, TextFormatReportsFileLineAndRule) {
  const RunResult r = run_lint("--root " + fixtures_root() + " src");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("src/core/narrow_viol.cpp:5: [narrow]"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("src/thread_viol.cpp:6: [thread]"),
            std::string::npos)
      << r.output;
}

TEST(DriftLint, CleanAndSuppressedFilesProduceNoFindings) {
  const RunResult r = run_lint("--root " + fixtures_root() + " src");
  EXPECT_EQ(r.output.find("clean.cpp"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("suppressed.cpp"), std::string::npos) << r.output;
}

TEST(DriftLint, UnknownFlagExitsWithUsageError) {
  const RunResult r = run_lint("--definitely-not-a-flag 2>/dev/null");
  EXPECT_EQ(r.exit_code, 2);
}

}  // namespace
