// Fixture: `atomic-order` rule — memory_order_relaxed outside the
// src/obs/ metric shards needs a justified allow.
#include <atomic>

namespace drift::core {

int fixture_relaxed_read(const std::atomic<int>& v) {
  return v.load(std::memory_order_relaxed);
}

}  // namespace drift::core
