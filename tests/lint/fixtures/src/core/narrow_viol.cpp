// Fixture: `narrow` rule — unjustified casts to code-carrying types.
#include <cstdint>

std::int32_t fixture_narrow(std::int64_t q) {
  const std::int8_t small = (std::int8_t)q;
  const std::int32_t code = static_cast<std::int32_t>(q);
  return small + code;
}
