// Fixture: a justified dispatch-boundary consumer — the allow below
// must silence the `intrinsic` include violation.
// drift-lint: allow(intrinsic) — fixture consumer of the dispatch
// boundary with a proper justification sentence.
#include "nn/simd/fixture_kernels.hpp"

int fixture_dispatch_consumer() { return fixture_simd_home(); }
