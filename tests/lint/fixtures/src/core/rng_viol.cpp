// Fixture: `rng-stream` rule — raw std engines and distributions
// outside util/rng.hpp bypass the seeded, forkable stream discipline.
#include <random>

namespace drift::core {

double fixture_raw_draw() {
  std::mt19937 gen(42);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(gen);
}

}  // namespace drift::core
