// Fixture: justified suppressions silence every v2 graph/flow rule
// (layer, unordered, float-accum, rng-stream, race, atomic-order).
#include <atomic>
#include <fstream>
#include <random>
#include <string>
#include <unordered_map>

// drift-lint: allow(layer) — fixture exercising a justified upward
// dependency edge for the layer rule.
#include "serve/fixture_api.hpp"

namespace drift::core {

template <typename Body>
void parallel_for(int begin, int end, Body&& body);

void fixture_v2_write(const std::string& line) {
  std::ofstream out("artifact.json");
  out << line;
}

void fixture_v2_emit(const std::unordered_map<std::string, int>& counts) {
  // drift-lint: allow(unordered) — fixture: the artifact consumer
  // re-sorts these lines before committing them.
  for (const auto& [key, value] : counts) {
    fixture_v2_write(key + std::to_string(value));
  }
}

float fixture_v2_sum(const float* x, int n) {
  float acc = 0.0f;
  for (int i = 0; i < n; ++i) {
    // drift-lint: allow(float-accum) — fixture: bounded 8-element sum,
    // the error stays below the quantization step by construction.
    acc += x[i];
  }
  return acc;
}

unsigned fixture_v2_draw() {
  // drift-lint: allow(rng-stream) — fixture: engine seeded from the
  // deterministic run seed and confined to this fixture.
  std::mt19937 gen(7);
  return gen();
}

long fixture_v2_race(int n) {
  long total = 0;
  parallel_for(0, n, [&](int i) {
    // drift-lint: allow(race) — fixture: writers are serialized by the
    // single-worker pool this fixture runs on.
    total += i;
  });
  return total;
}

int fixture_v2_relaxed(const std::atomic<int>& v) {
  // drift-lint: allow(atomic-order) — fixture: independent flag with
  // no ordering requirement against other memory.
  return v.load(std::memory_order_relaxed);
}

}  // namespace drift::core
