// Fixture: `layer` rule — production modules must never depend on the
// src/ref/ oracles; the oracles pin the code, not the other way round.
#include "ref/fixture_ok.hpp"

int fixture_oracle_dep() { return 0; }
