// Fixture helper: exists so "core/fixture_helper.hpp" resolves under
// src/ for the oracle-include fixture.
#pragma once
