// Fixture: `race` rule — a parallel lambda writing a by-reference
// capture races across workers.  fixture_slot_writes is the clean
// disjoint-slot form: every worker writes its own subscripted slot.
#include <vector>

namespace drift::core {

template <typename Body>
void parallel_for(int begin, int end, Body&& body);

long fixture_shared_sum(int n) {
  long total = 0;
  parallel_for(0, n, [&](int i) {
    total += i;
  });
  return total;
}

void fixture_slot_writes(std::vector<int>& out, int n) {
  parallel_for(0, n, [&](int i) {
    out[i] = i * 2;
  });
}

}  // namespace drift::core
