// Fixture: `oracle-include` rule — src/ref/ must stay self-contained.
#include <vector>

#include "core/fixture_helper.hpp"
#include "ref/fixture_ok.hpp"
#include "missing/not_a_real_header.hpp"
