// Fixture helper: a legal src/ref/-internal include target.
#pragma once
