// Fixture: src/obs/ is the blessed home for relaxed atomics — nothing
// in this file may be reported by the `atomic-order` rule.
#include <atomic>

namespace drift::obs {

int fixture_shard_read(const std::atomic<int>& v) {
  return v.load(std::memory_order_relaxed);
}

}  // namespace drift::obs
