// Fixture: `obs` rule — registry lookup-by-string inside loops.
struct FixtureRegistry {
  int* counter(const char*) { return nullptr; }
  int* gauge(const char*) { return nullptr; }
  int* histogram(const char*) { return nullptr; }
  static FixtureRegistry& global();
};

void fixture_obs(int n) {
  for (int i = 0; i < n; ++i) {
    FixtureRegistry::global().counter("hot.loop");  // violation
  }
  int j = 0;
  while (j < n) {
    FixtureRegistry::global().histogram("hot.hist");  // violation
    ++j;
  }
  for (int i = 0; i < n; ++i) FixtureRegistry::global().gauge("inline");

  // Legal: the handle is cached once (what DRIFT_OBS_* expand to).
  for (int i = 0; i < n; ++i) {
    static int* cached = FixtureRegistry::global().counter("hot.cached");
    (void)cached;
  }
  // Legal: lookup outside any loop.
  FixtureRegistry::global().counter("cold.path");
}
