// Fixture: the one directory where raw intrinsics are legal — nothing
// in this header may be reported by the `intrinsic` rule.
#pragma once
#include <immintrin.h>

inline int fixture_simd_home() {
  __m256i zero = _mm256_setzero_si256();
  return _mm256_extract_epi32(zero, 0);
}
