// Fixture: `float-accum` rule — a float accumulator in a loop outside
// src/nn/simd/ gains rounding error per iteration.  fixture_stable_sum
// is the clean form: accumulate in double, round once at the end.
namespace drift::nn {

float fixture_unstable_sum(const float* x, int n) {
  float acc = 0.0f;
  for (int i = 0; i < n; ++i) {
    acc += x[i];
  }
  return acc;
}

float fixture_stable_sum(const float* x, int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    total += x[i];
  }
  return static_cast<float>(total);
}

}  // namespace drift::nn
