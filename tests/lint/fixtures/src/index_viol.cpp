// Fixture: `index` rule — raw .data()[...] without an enclosing check.
#include <vector>

float fixture_unchecked(const std::vector<float>& v, int i) {
  return v.data()[i];
}

float fixture_checked(const std::vector<float>& v, int i) {
  DRIFT_CHECK_INDEX(i, static_cast<int>(v.size()));
  return v.data()[i];  // legal: checked in the enclosing function
}
