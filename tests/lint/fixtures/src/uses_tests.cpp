// Fixture: `oracle-include` rule — production code must not reach
// into tests/.
#include "lint_fixture_util.hpp"
