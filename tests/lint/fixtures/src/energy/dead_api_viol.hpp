// Fixture: `dead-api` rule — fixture_unused_energy is exported with no
// cross-TU reference and must be reported; fixture_used_energy is
// referenced from dead_api_user.cpp; fixture_kept_energy carries a
// justified allow.
#pragma once

namespace drift::energy {

int fixture_unused_energy(int joules);

int fixture_used_energy(int joules);

// drift-lint: allow(dead-api) — fixture: kept as the documented
// extension point of the energy fixture API.
int fixture_kept_energy(int joules);

}  // namespace drift::energy
