// Fixture: the cross-TU consumer that keeps fixture_used_energy out of
// the `dead-api` report.
#include "energy/dead_api_viol.hpp"

int fixture_energy_consumer() {
  return drift::energy::fixture_used_energy(5);
}
