// Fixture: `layer` rule — util (rank 0) must not depend on serve
// (rank 5), neither through the include edge nor through a qualified
// symbol reference.
#include "serve/fixture_api.hpp"

namespace drift::util {

int fixture_call_up() { return drift::serve::fixture_entry(3); }

}  // namespace drift::util
