// Fixture: `thread` rule — raw threading primitives outside the pool.
#include <future>
#include <thread>

void fixture_thread() {
  std::thread t([] {});
  t.join();
  (void)std::async([] { return 1; });
  const unsigned n = std::thread::hardware_concurrency();  // legal query
  (void)n;
}
