// Fixture: clean file.  Banned tokens inside comments — std::thread,
// rand(), std::cout, steady_clock::now() — must not fire, and neither
// must tokens inside string literals (the lexer blanks both channels).
#include <string>

std::string fixture_clean() {
  std::string s = "std::cout << rand() << std::thread";
  s += "std::random_device in a string is data, not code";
  return s;
}
