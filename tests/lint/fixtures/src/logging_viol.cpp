// Fixture: `logging` rule — direct output streams inside src/.
#include <cstdio>
#include <iostream>

void fixture_logging() {
  std::cout << "to stdout";
  std::cerr << "to stderr";
  printf("%d", 3);
}
