// Fixture: `unordered` rule — hash-order iteration in a function whose
// call path reaches an artifact writer leaks nondeterminism into the
// artifact.  fixture_emit_sorted is the clean counterpart: the same
// writer fed from an ordered container.
#include <fstream>
#include <map>
#include <string>
#include <unordered_map>

namespace drift::serve {

void fixture_write_artifact(const std::string& line) {
  std::ofstream out("artifact.json");
  out << line;
}

void fixture_emit_counts(const std::unordered_map<std::string, int>& counts) {
  for (const auto& [key, value] : counts) {
    fixture_write_artifact(key + std::to_string(value));
  }
}

void fixture_emit_sorted(const std::map<std::string, int>& ordered) {
  for (const auto& [key, value] : ordered) {
    fixture_write_artifact(key + std::to_string(value));
  }
}

}  // namespace drift::serve
