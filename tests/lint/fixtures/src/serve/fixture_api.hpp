// Fixture helper: a serve-layer (top-rank) include target for the
// `layer` rule fixtures.  fixture_entry is referenced by
// src/util/layer_viol.cpp, so it is not a dead-api finding.
#pragma once

namespace drift::serve {

int fixture_entry(int requests);

}  // namespace drift::serve
