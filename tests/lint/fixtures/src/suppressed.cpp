// Fixture: justified suppressions silence every reported rule.
#include <cstdio>
#include <iostream>

void fixture_suppressed() {
  // drift-lint: allow(logging) — fixture exercising a justified
  // suppression placed on the comment line above the violation.
  printf("fine");
  std::cout << "also fine";  // drift-lint: allow(logging) — same-line suppression form.
}
