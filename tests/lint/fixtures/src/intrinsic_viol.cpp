// Fixture: `intrinsic` rule — raw SIMD usage outside src/nn/simd/.
#include <immintrin.h>

#include "nn/simd/fixture_kernels.hpp"

int fixture_intrinsic() {
  __m256i acc = _mm256_setzero_si256();
  int8x16_t lanes;
  (void)lanes;
  return _mm_cvtsi128_si32(_mm256_castsi256_si128(acc));
}
