// Fixture: suppression hygiene — bare allows, unknown rules, and
// malformed drift-lint comments are themselves violations.
#include <cstdio>

void fixture_bad_allow() {
  printf("no justification");  // drift-lint: allow(logging)
  printf("unknown rule");      // drift-lint: allow(nonsense) — rule name does not exist.
  // drift-lint: this marker comment has no allow clause at all
  printf("third");
}
