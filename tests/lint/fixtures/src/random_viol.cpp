// Fixture: `random` rule — nondeterministic sources inside src/.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

long fixture_random() {
  std::random_device rd;
  const long a = std::rand();
  const long b = static_cast<long>(std::time(nullptr));
  const auto t = std::chrono::steady_clock::now();
  (void)t;
  return a + b + static_cast<long>(rd());
}
