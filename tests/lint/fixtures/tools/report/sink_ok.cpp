// Fixture: tools/report/ is a reporting sink — direct stdio is its
// output channel, so the `logging` and `obs` rules must stay silent.
#include <cstdio>
#include <iostream>

struct FixtureRegistry {
  int* counter(const char*) { return nullptr; }
  static FixtureRegistry& global();
};

void fixture_sink(int n) {
  printf("summary row\n");
  fprintf(stderr, "diagnostic\n");
  std::cout << "canonical json";
  for (int i = 0; i < n; ++i) {
    FixtureRegistry::global().counter("lookup.in.loop");  // still exempt
  }
}
