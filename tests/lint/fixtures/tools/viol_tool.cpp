// Fixture: library-style code under tools/ that is NOT a reporting
// sink — the `logging` and `obs` rules apply exactly as in src/.
#include <cstdio>

struct FixtureRegistry {
  int* counter(const char*) { return nullptr; }
  static FixtureRegistry& global();
};

void fixture_tool(int n) {
  printf("%d", n);  // violation: logging
  for (int i = 0; i < n; ++i) {
    FixtureRegistry::global().counter("hot.loop");  // violation: obs
  }
}
