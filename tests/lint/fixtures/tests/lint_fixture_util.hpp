// Fixture helper: an include target living inside tests/.
#pragma once
