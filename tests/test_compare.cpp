// Invariants of the four-way comparison harness across the full
// workload set (complements the targeted tests in test_accel.cpp).
#include <gtest/gtest.h>

#include "accel/compare.hpp"
#include "accel/timeline.hpp"

namespace drift::accel {
namespace {

CompareConfig quick_config() {
  CompareConfig cfg;
  cfg.noise_budget = 0.05;
  return cfg;
}

TEST(Compare, UtilizationStaysInUnitInterval) {
  const auto cmp =
      compare_workload(nn::make_resnet18(), quick_config());
  for (const RunResult* r :
       {&cmp.eyeriss, &cmp.bitfusion, &cmp.drq, &cmp.drift}) {
    for (const auto& l : r->layers) {
      EXPECT_GE(l.utilization, 0.0) << r->accelerator << " " << l.layer;
      EXPECT_LE(l.utilization, 1.0 + 1e-9)
          << r->accelerator << " " << l.layer;
    }
  }
}

TEST(Compare, EnergyComponentsNonNegative) {
  const auto cmp = compare_workload(nn::make_deit_s(), quick_config());
  for (const RunResult* r :
       {&cmp.eyeriss, &cmp.bitfusion, &cmp.drq, &cmp.drift}) {
    EXPECT_GE(r->energy.static_pj, 0.0);
    EXPECT_GE(r->energy.dram_pj, 0.0);
    EXPECT_GE(r->energy.buffer_pj, 0.0);
    EXPECT_GE(r->energy.core_pj, 0.0);
  }
}

TEST(Compare, DramBytesOrdering) {
  // FP32 Eyeriss moves by far the most data; the dynamic designs move
  // no more than static INT8.
  const auto cmp = compare_workload(nn::make_bert_base(), quick_config());
  EXPECT_GT(cmp.eyeriss.dram_bytes, cmp.bitfusion.dram_bytes);
  EXPECT_LE(cmp.drq.dram_bytes, cmp.bitfusion.dram_bytes);
  EXPECT_LE(cmp.drift.dram_bytes, cmp.bitfusion.dram_bytes);
}

TEST(Compare, LayerCountsMatchWorkload) {
  const auto spec = nn::make_resnet50();
  const auto cmp = compare_workload(spec, quick_config());
  EXPECT_EQ(cmp.drift.layers.size(), spec.layers.size());
  EXPECT_EQ(cmp.drq.layers.size(), spec.layers.size());
}

TEST(Compare, SeedChangesMixNotOrdering) {
  CompareConfig a = quick_config();
  CompareConfig b = quick_config();
  b.seed = 12345;
  const auto ca = compare_workload(nn::make_deit_s(), a);
  const auto cb = compare_workload(nn::make_deit_s(), b);
  // Different statistical draws give different cycles but the same
  // qualitative ordering.
  EXPECT_NE(ca.drift.cycles, cb.drift.cycles);
  EXPECT_GT(ca.speedup_drift(), ca.speedup_bitfusion());
  EXPECT_GT(cb.speedup_drift(), cb.speedup_bitfusion());
}

TEST(Compare, TimelineConsistentWithSumOfMax) {
  // The double-buffered timeline can exceed the per-layer
  // max(compute, dram) sum only by exposed DRAM, and never undercut
  // the pure compute sum.
  const auto cmp = compare_workload(nn::make_resnet18(), quick_config());
  std::vector<TimelineLayer> tl;
  std::int64_t compute_sum = 0, summax = 0;
  for (const auto& l : cmp.drift.layers) {
    tl.push_back({l.layer, l.compute_cycles, l.dram_cycles});
    compute_sum += l.compute_cycles;
    summax += std::max(l.compute_cycles, l.dram_cycles);
  }
  const auto timeline = build_timeline(tl);
  EXPECT_GE(timeline.total_cycles, compute_sum);
  EXPECT_LE(timeline.total_cycles,
            summax + tl.front().dram_cycles + tl.back().dram_cycles +
                timeline.total_cycles / 10);
  EXPECT_GT(timeline.overlap_fraction, 0.5);
}

TEST(Compare, CustomArrayGeometryRespected) {
  CompareConfig cfg = quick_config();
  cfg.hw.array = {16, 16};
  const auto cmp = compare_workload(nn::make_deit_s(), cfg);
  // A 256-unit grid must be slower than the default 792-unit grid for
  // the INT designs.
  const auto big = compare_workload(nn::make_deit_s(), quick_config());
  EXPECT_GT(cmp.bitfusion.cycles, big.bitfusion.cycles);
  EXPECT_GT(cmp.drift.cycles, big.drift.cycles);
}

}  // namespace
}  // namespace drift::accel
