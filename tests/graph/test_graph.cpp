// Graph-runtime structural tests (label: graph):
//   - every malformed-graph class fails validation with the offending
//     node named in the message (the CLI surfaces these verbatim);
//   - the JSON topology format is a serialization fixed point, and the
//     committed examples/model_zoo/*.json files are byte-identical to
//     the programmatic zoo builders (no silent drift between the two);
//   - the resnet18 zoo graph exports exactly the GEMM list the
//     hand-written nn::make_resnet18() emits, index for index;
//   - composite nn blocks (ResidualBlock / TransformerBlock) and their
//     graph-runtime equivalents produce bitwise-identical outputs and
//     the same per-node obs record set (the latent-inconsistency fix);
//   - executor lifetime tracking frees intermediates in-flight.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/executor.hpp"
#include "graph/graph.hpp"
#include "graph/json_topology.hpp"
#include "graph/ops.hpp"
#include "graph/workload_export.hpp"
#include "nn/model.hpp"
#include "nn/quant_engine.hpp"
#include "nn/workload.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "zoo.hpp"

namespace drift {
namespace {

using graph::AttrMap;
using graph::Attr;
using graph::Graph;
using graph::GraphBuilder;
using graph::GraphExecutor;

/// True when some validation error mentions both fragments (the node
/// name and the reason) — the tests pin that failures are actionable.
bool has_error_mentioning(const std::vector<std::string>& errors,
                          const std::string& node,
                          const std::string& reason) {
  return std::any_of(errors.begin(), errors.end(),
                     [&](const std::string& e) {
                       return e.find("'" + node + "'") != std::string::npos &&
                              e.find(reason) != std::string::npos;
                     });
}

std::string join(const std::vector<std::string>& v) {
  std::string out;
  for (const auto& s : v) out += s + "\n";
  return out;
}

// --------------------------------------------------------------------
// Negative validation: each malformed-graph class names its node.
// --------------------------------------------------------------------

TEST(GraphValidate, DuplicateNodeNameIsNamed) {
  Graph g = GraphBuilder("dup")
                .input("x", {4, 4})
                .then("a", "relu")
                .then("a", "relu")
                .build();
  const auto errors = graph::validate(g);
  EXPECT_TRUE(has_error_mentioning(errors, "a", "duplicate name"))
      << join(errors);
}

TEST(GraphValidate, UnknownOpIsNamedAndListsKnownOps) {
  Graph g = GraphBuilder("unknown")
                .input("x", {4, 4})
                .then("a", "conv3d")
                .build();
  const auto errors = graph::validate(g);
  EXPECT_TRUE(has_error_mentioning(errors, "a", "unknown op 'conv3d'"))
      << join(errors);
  // The message enumerates the registry so typos are self-correcting.
  EXPECT_TRUE(has_error_mentioning(errors, "a", "conv2d")) << join(errors);
  EXPECT_TRUE(has_error_mentioning(errors, "a", "softmax")) << join(errors);
}

TEST(GraphValidate, DanglingInputIsNamed) {
  Graph g = GraphBuilder("dangling")
                .input("x", {4, 4})
                .node("a", "add", {"x", "ghost"})
                .build();
  const auto errors = graph::validate(g);
  EXPECT_TRUE(has_error_mentioning(
      errors, "a", "input 'ghost' is neither a graph input nor a node"))
      << join(errors);
}

TEST(GraphValidate, CycleIsNamed) {
  Graph g = GraphBuilder("cycle")
                .input("x", {4, 4})
                .node("a", "add", {"x", "b"})
                .node("b", "relu", {"a"})
                .build();
  const auto errors = graph::validate(g);
  EXPECT_TRUE(has_error_mentioning(errors, "a", "dependency cycle"))
      << join(errors);
}

TEST(GraphValidate, ArityMismatchIsNamed) {
  Graph g = GraphBuilder("arity")
                .input("x", {4, 4})
                .node("a", "add", {"x"})
                .build();
  const auto errors = graph::validate(g);
  EXPECT_TRUE(has_error_mentioning(errors, "a", "expects 2 input(s), got 1"))
      << join(errors);
}

TEST(GraphValidate, UndefinedOutputIsNamed) {
  Graph g = GraphBuilder("badout")
                .input("x", {4, 4})
                .then("a", "relu")
                .output("nowhere")
                .build();
  const auto errors = graph::validate(g);
  EXPECT_TRUE(has_error_mentioning(
      errors, "nowhere", "declared as graph output but never defined"))
      << join(errors);
}

TEST(GraphValidate, ShapeMismatchIsNamedByInference) {
  // Structurally valid, shape-invalid: conv2d needs a rank-3 [C, H, W]
  // input but gets the rank-2 matrix.
  Graph g = GraphBuilder("badshape")
                .input("x", {4, 4})
                .then("a", "conv2d",
                      AttrMap{{"out_channels", Attr::of_int(8)},
                              {"kernel", Attr::of_int(3)}})
                .build();
  ASSERT_TRUE(graph::validate(g).empty());
  const auto shapes = graph::infer_shapes(g);
  ASSERT_FALSE(shapes.ok());
  EXPECT_TRUE(has_error_mentioning(shapes.errors, "a", "")) <<
      join(shapes.errors);
}

TEST(GraphValidate, ZooGraphsAreClean) {
  for (const std::string& name : graphcli::zoo_names()) {
    const Graph g = graphcli::make_zoo_graph(name);
    EXPECT_TRUE(graph::validate(g).empty()) << name;
    EXPECT_TRUE(graph::infer_shapes(g).ok()) << name;
  }
}

// --------------------------------------------------------------------
// JSON topology: canonical serialization + model-zoo sync.
// --------------------------------------------------------------------

std::string read_file_or_empty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(GraphJson, EmitParseEmitIsAFixedPoint) {
  for (const std::string& name : graphcli::zoo_names()) {
    const std::string text =
        graph::to_topology_json(graphcli::make_zoo_graph(name));
    const auto parsed = graph::parse_topology(text);
    ASSERT_TRUE(parsed.ok()) << name << ": " << join(parsed.errors);
    EXPECT_EQ(graph::to_topology_json(parsed.graph), text) << name;
  }
}

TEST(GraphJson, ModelZooFilesMatchProgrammaticBuilders) {
  // The committed examples/model_zoo/*.json are the canonical emit of
  // the zoo builders; regenerate with `drift_graph emit --zoo=NAME`.
  for (const std::string& name : graphcli::zoo_names()) {
    const std::string path =
        std::string(DRIFT_MODEL_ZOO_DIR) + "/" + name + ".json";
    const std::string committed = read_file_or_empty(path);
    ASSERT_FALSE(committed.empty()) << "missing " << path;
    EXPECT_EQ(graph::to_topology_json(graphcli::make_zoo_graph(name)),
              committed)
        << name << " drifted from its builder; regenerate with "
        << "drift_graph emit --zoo=" << name;
  }
}

TEST(GraphJson, ParseErrorsNameTheNode) {
  const auto parsed = graph::parse_topology(
      R"({"name": "t", "family": "cnn",
          "inputs": [{"name": "x", "shape": [4, 4]}],
          "nodes": [{"name": "a", "op": "relu", "inputs": 3}],
          "outputs": ["a"]})");
  // Schema errors are node-named.
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(has_error_mentioning(parsed.errors, "a",
                                   "'inputs' must be an array"))
      << join(parsed.errors);
}

// --------------------------------------------------------------------
// Workload export: the zoo resnet18 graph reproduces make_resnet18().
// --------------------------------------------------------------------

TEST(GraphExport, Resnet18MatchesHandWrittenWorkload) {
  const Graph g = graphcli::make_zoo_graph("resnet18");
  const auto shapes = graph::infer_shapes(g);
  ASSERT_TRUE(shapes.ok());
  const nn::WorkloadSpec got = graph::to_workload(g, shapes);
  const nn::WorkloadSpec want = nn::make_resnet18();

  EXPECT_EQ(got.family, want.family);
  ASSERT_EQ(got.layers.size(), want.layers.size());
  for (std::size_t i = 0; i < got.layers.size(); ++i) {
    const nn::LayerGemm& a = got.layers[i];
    const nn::LayerGemm& b = want.layers[i];
    EXPECT_EQ(a.name, b.name) << "layer " << i;
    EXPECT_EQ(a.kind, b.kind) << a.name;
    EXPECT_EQ(a.dims.M, b.dims.M) << a.name;
    EXPECT_EQ(a.dims.K, b.dims.K) << a.name;
    EXPECT_EQ(a.dims.N, b.dims.N) << a.name;
    EXPECT_EQ(a.repeat, b.repeat) << a.name;
    EXPECT_EQ(a.kernel, b.kernel) << a.name;
  }
  EXPECT_EQ(got.total_macs(), want.total_macs());
}

// --------------------------------------------------------------------
// Composite blocks vs. graph execution: bitwise outputs and identical
// per-node obs record sets (satellite 4's pin).
// --------------------------------------------------------------------

/// Names of the layer records currently in the registry (obs builds).
std::set<std::string> scrape_record_names() {
  std::set<std::string> names;
#ifndef DRIFT_OBS_OFF
  // The canonical scrape always includes layer records; pulling names
  // via layer_record would create them, so parse the JSON lines.
  const std::string json = obs::Registry::global().to_json({"none."});
  std::istringstream lines(json);
  std::string line;
  while (std::getline(lines, line)) {
    const std::string marker = "\"layer\": \"";
    const std::size_t pos = line.find(marker);
    if (pos == std::string::npos) continue;
    const std::size_t start = pos + marker.size();
    const std::size_t end = line.find('"', start);
    names.insert(line.substr(start, end - start));
  }
#endif
  return names;
}

TensorF fill_normal(Shape shape, std::uint64_t seed) {
  TensorF t(std::move(shape));
  Rng rng(seed);
  for (auto& v : t.data()) v = static_cast<float>(rng.normal());
  return t;
}

void expect_bitwise_equal(const TensorF& a, const TensorF& b) {
  ASSERT_EQ(a.shape(), b.shape());
  const auto ad = a.data();
  const auto bd = b.data();
  for (std::size_t i = 0; i < ad.size(); ++i) {
    ASSERT_EQ(ad[i], bd[i]) << "element " << i;
  }
}

TEST(GraphComposite, ResidualBlockMatchesGraphBitwiseAndInObsRecords) {
  const std::int64_t in_ch = 4, out_ch = 8, stride = 2;
  const TensorF input = fill_normal(Shape{in_ch, 10, 10}, 33);
  nn::QuantEngine::Config cfg;
  cfg.mode = nn::QuantMode::kDrift;

  // Composite arm.  Same rng seed as the graph arm; the block's ctor
  // draws conv1, conv2, projection in that order.
#ifndef DRIFT_OBS_OFF
  obs::Registry::global().reset();
#endif
  Rng block_rng(5);
  nn::ResidualBlock block("b", in_ch, out_ch, stride, block_rng);
  nn::QuantEngine block_engine(cfg);
  const TensorF block_out = block.forward(input, block_engine);
  const std::set<std::string> block_records = scrape_record_names();

  // Graph arm.  Insertion order fixes the rng bind order: the three
  // conv nodes must bind conv1, conv2, proj exactly like the ctor
  // (bn/relu binders draw nothing, and `add` is a graph-level op).
  Graph g = GraphBuilder("resblock")
                .input("x", {in_ch, 10, 10})
                .then("b.conv1", "conv2d",
                      AttrMap{{"out_channels", Attr::of_int(out_ch)},
                              {"kernel", Attr::of_int(3)},
                              {"stride", Attr::of_int(stride)},
                              {"pad", Attr::of_int(1)}})
                .then("b.bn1", "batchnorm2d")
                .then("b.relu1", "relu")
                .then("b.conv2", "conv2d",
                      AttrMap{{"out_channels", Attr::of_int(out_ch)},
                              {"kernel", Attr::of_int(3)},
                              {"pad", Attr::of_int(1)}})
                .then("b.bn2", "batchnorm2d")
                .node("b.proj", "conv2d", {"x"},
                      AttrMap{{"out_channels", Attr::of_int(out_ch)},
                              {"kernel", Attr::of_int(1)},
                              {"stride", Attr::of_int(stride)}})
                .node("b.add", "add", {"b.bn2", "b.proj"})
                .then("b.relu2", "relu")
                .build();
#ifndef DRIFT_OBS_OFF
  obs::Registry::global().reset();
#endif
  Rng graph_rng(5);
  GraphExecutor executor(std::move(g), graph_rng);
  nn::QuantEngine graph_engine(cfg);
  const TensorF graph_out = executor.run({input}, graph_engine).front();
  const std::set<std::string> graph_records = scrape_record_names();

  expect_bitwise_equal(block_out, graph_out);
#ifndef DRIFT_OBS_OFF
  // The latent-inconsistency fix: the composite forward now reports
  // relu stages through the same primitive layers the graph binds, so
  // both paths attribute work to the identical node set.
  EXPECT_EQ(block_records, graph_records);
  EXPECT_TRUE(graph_records.count("b.relu1") == 1 &&
              graph_records.count("b.relu2") == 1)
      << "relu stages missing from the per-node records";
#endif
}

TEST(GraphComposite, TransformerBlockMatchesGraphBitwiseAndInObsRecords) {
  const std::int64_t tokens = 6, dim = 16, heads = 4, ffn = 32;
  const TensorF input = fill_normal(Shape{tokens, dim}, 44);
  nn::QuantEngine::Config cfg;
  cfg.mode = nn::QuantMode::kDrift;

#ifndef DRIFT_OBS_OFF
  obs::Registry::global().reset();
#endif
  Rng block_rng(9);
  nn::TransformerBlock block("t", dim, heads, ffn, block_rng);
  nn::QuantEngine block_engine(cfg);
  const TensorF block_out = block.forward(input, block_engine);
  const std::set<std::string> block_records = scrape_record_names();

  // rng bind order attn, ffn1, ffn2 — the ctor's member order.
  Graph g = GraphBuilder("xblock", "vit")
                .input("x", {tokens, dim})
                .then("t.ln1", "layernorm")
                .then("t.attn", "attention",
                      AttrMap{{"heads", Attr::of_int(heads)}})
                .node("t.add1", "add", {"t.attn", "x"})
                .then("t.ln2", "layernorm")
                .then("t.ffn1", "linear",
                      AttrMap{{"out_features", Attr::of_int(ffn)},
                              {"kind", Attr::of_string("ffn")}})
                .then("t.gelu", "gelu")
                .then("t.ffn2", "linear",
                      AttrMap{{"out_features", Attr::of_int(dim)},
                              {"kind", Attr::of_string("ffn")}})
                .node("t.add2", "add", {"t.ffn2", "t.add1"})
                .build();
#ifndef DRIFT_OBS_OFF
  obs::Registry::global().reset();
#endif
  Rng graph_rng(9);
  GraphExecutor executor(std::move(g), graph_rng);
  nn::QuantEngine graph_engine(cfg);
  const TensorF graph_out = executor.run({input}, graph_engine).front();
  const std::set<std::string> graph_records = scrape_record_names();

  expect_bitwise_equal(block_out, graph_out);
#ifndef DRIFT_OBS_OFF
  EXPECT_EQ(block_records, graph_records);
  EXPECT_EQ(graph_records.count("t.gelu"), 1u)
      << "gelu stage missing from the per-node records";
#endif
}

// --------------------------------------------------------------------
// Lifetime tracking: intermediates are freed in-flight.
// --------------------------------------------------------------------

TEST(GraphLifetime, ChainFreesIntermediatesAndBoundsResidency) {
  // A 6-stage elementwise chain over a [64, 64] tensor: at any moment
  // at most producer + consumer are resident, so the peak must stay
  // far below the sum of all values while every non-output dies.
  GraphBuilder b("chain");
  b.input("x", {64, 64});
  const int stages = 6;
  for (int i = 0; i < stages; ++i) {
    std::string stage_name = "n";
    stage_name += std::to_string(i);
    b.then(std::move(stage_name), i % 2 == 0 ? "relu" : "gelu");
  }
  Rng rng(3);
  GraphExecutor executor(b.build(), rng);
  nn::QuantEngine engine(nn::QuantEngine::Config{});
  const TensorF input = fill_normal(Shape{64, 64}, 7);
  const auto outputs = executor.run({input}, engine);
  ASSERT_EQ(outputs.size(), 1u);

  const std::int64_t tensor_bytes = 64 * 64 * sizeof(float);
  // input + stages values exist over the run; output survives.
  EXPECT_EQ(executor.tensors_freed(), stages);  // input + intermediates
  EXPECT_GE(executor.peak_resident_bytes(), 2 * tensor_bytes);
  EXPECT_LE(executor.peak_resident_bytes(), 3 * tensor_bytes);
}

TEST(GraphLifetime, FanOutKeepsValueAliveUntilLastConsumer) {
  // x feeds both branches and the final add; it must survive until the
  // add runs even though the first consumer fires immediately.
  Graph g = GraphBuilder("fan")
                .input("x", {32, 32})
                .then("a", "relu")
                .node("b", "gelu", {"x"})
                .node("sum", "add", {"a", "b"})
                .build();
  Rng rng(4);
  GraphExecutor executor(std::move(g), rng);
  nn::QuantEngine engine(nn::QuantEngine::Config{});
  const TensorF input = fill_normal(Shape{32, 32}, 8);
  const auto outputs = executor.run({input}, engine);
  ASSERT_EQ(outputs.size(), 1u);

  // x, a, b all die; sum is the retained output.
  EXPECT_EQ(executor.tensors_freed(), 3);
  const std::int64_t tensor_bytes = 32 * 32 * sizeof(float);
  // x + a + b resident together just before the add consumes them.
  EXPECT_GE(executor.peak_resident_bytes(), 3 * tensor_bytes);
}

}  // namespace
}  // namespace drift
