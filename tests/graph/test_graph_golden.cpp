// Golden end-to-end artifacts for whole-model graph runs (label:
// graph):
//
// A fixed-seed model-zoo topology flows through the real pipeline —
// workload export -> selector -> scheduler -> cycle model -> traffic —
// and the canonicalized metrics JSON (schema v2, deterministic metric
// prefixes plus all per-layer records) is byte-compared against a
// checked-in golden.  Two topologies are pinned: resnet18 (the CNN
// path: conv GEMMs, projection shortcuts) and gpt2_layer (the LLM
// path: giant QKV / FFN GEMMs).  Regenerate after an intentional
// change with:
//   DRIFT_OBS_UPDATE_GOLDEN=1 ./build/tests/graph/drift_graph_tests
//
// The artifact must also be byte-identical whatever the thread-pool
// size — counters merge commutatively and every histogram observation
// happens on the submitting thread — and the Chrome trace must be
// structurally sound (every B closed by its E, one accel span per
// GEMM layer).  Under -DDRIFT_OBS_OFF the whole suite GTEST_SKIPs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "nn/workload.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pipeline.hpp"
#include "util/thread_pool.hpp"
#include "zoo.hpp"

namespace drift {
namespace {

#ifndef DRIFT_OBS_OFF

/// Metric prefixes the pipeline itself creates, deterministically (no
/// wall clock, no pool size).  Registry::reset() zeroes counters but
/// keeps their names registered, so the scrape is restricted to
/// prefixes no *other* test in this binary touches — a key merely
/// created by an earlier test would otherwise appear (as zero) and
/// break byte-exactness.  Per-layer coverage lives in the layer
/// records, which reset() does drop and which are always emitted.
std::vector<std::string> deterministic_prefixes() {
  return {"accel.", "scheduler.", "traffic."};
}

/// Runs `zoo_name` through the full pipeline from a clean registry and
/// tracer.  Everything recorded is a deterministic function of the
/// topology and the default GraphPipelineConfig seed.
graphcli::GraphPipelineResult run_fixed_pipeline(
    const std::string& zoo_name) {
  obs::Registry::global().reset();
  obs::Tracer::global().reset();
  obs::Tracer::global().set_enabled(true);
  graphcli::GraphPipelineConfig config;  // kDrift, greedy, seed 17
  graphcli::GraphPipelineResult result =
      graphcli::run_graph_pipeline(graphcli::make_zoo_graph(zoo_name),
                                   config);
  obs::Tracer::global().set_enabled(false);
  return result;
}

std::string golden_path(const std::string& zoo_name) {
  return std::string(DRIFT_GRAPH_GOLDEN_DIR) + "/" + zoo_name + ".json";
}

std::string read_file_or_empty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void check_against_golden(const std::string& zoo_name) {
  run_fixed_pipeline(zoo_name);
  const std::string scrape =
      obs::Registry::global().to_json(deterministic_prefixes());
  if (std::getenv("DRIFT_OBS_UPDATE_GOLDEN") != nullptr) {
    ASSERT_TRUE(obs::write_file(golden_path(zoo_name), scrape));
    GTEST_SKIP() << "golden regenerated at " << golden_path(zoo_name);
  }
  const std::string golden = read_file_or_empty(golden_path(zoo_name));
  ASSERT_FALSE(golden.empty())
      << "missing golden " << golden_path(zoo_name)
      << " — regenerate with DRIFT_OBS_UPDATE_GOLDEN=1";
  EXPECT_EQ(scrape, golden)
      << zoo_name
      << " artifact drifted from the golden; if the change is "
         "intentional, regenerate with DRIFT_OBS_UPDATE_GOLDEN=1";
}

TEST(GraphGolden, Resnet18ArtifactMatchesGolden) {
  check_against_golden("resnet18");
}

TEST(GraphGolden, Gpt2LayerArtifactMatchesGolden) {
  check_against_golden("gpt2_layer");
}

TEST(GraphGolden, ArtifactIsByteIdenticalAcrossThreadCounts) {
  std::map<int, std::string> scrapes;
  for (const int threads : {1, 2, 8}) {
    util::ThreadPool::instance().resize(threads);
    run_fixed_pipeline("resnet18");
    scrapes[threads] =
        obs::Registry::global().to_json(deterministic_prefixes());
  }
  util::ThreadPool::instance().resize(0);
  EXPECT_EQ(scrapes[1], scrapes[2]);
  EXPECT_EQ(scrapes[1], scrapes[8]);
}

TEST(GraphGolden, EveryGemmLayerHasARecordAndAnAccelSpan) {
  const graphcli::GraphPipelineResult result =
      run_fixed_pipeline("resnet18");

  // Per-node records: one for every exported GEMM layer, none extra
  // within the run (the scrape always carries the layer records).
  std::set<std::string> want_layers;
  for (const nn::LayerGemm& layer : result.workload.layers) {
    want_layers.insert(layer.name);
  }
  std::set<std::string> got_layers;
  const std::string json = obs::Registry::global().to_json({"none."});
  std::istringstream lines(json);
  std::string line;
  while (std::getline(lines, line)) {
    const std::string marker = "\"layer\": \"";
    const std::size_t pos = line.find(marker);
    if (pos == std::string::npos) continue;
    const std::size_t start = pos + marker.size();
    got_layers.insert(line.substr(start, line.find('"', start) - start));
  }
  EXPECT_EQ(got_layers, want_layers);

  // Per-node trace spans: every B has a matching E on its thread and
  // the accel model opened exactly one layer span per mix.
  const std::string trace = obs::Tracer::global().to_chrome_json();
  ASSERT_EQ(trace.rfind("{\"traceEvents\": [", 0), 0u);
  const auto event_field = [](const std::string& event,
                              const std::string& key) -> std::int64_t {
    const std::string marker = "\"" + key + "\": ";
    const std::size_t pos = event.find(marker);
    if (pos == std::string::npos) return -1;
    return std::atoll(event.c_str() + pos + marker.size());
  };
  std::map<std::pair<std::int64_t, std::int64_t>,
           std::vector<std::string>>
      open_spans;  // by (pid, tid)
  int accel_spans = 0, begins = 0, ends = 0;
  std::istringstream trace_lines(trace);
  while (std::getline(trace_lines, line)) {
    if (line.rfind("{\"name\": ", 0) != 0) continue;
    const std::size_t name_end = line.find('"', 10);
    ASSERT_NE(name_end, std::string::npos) << line;
    const std::string name = line.substr(10, name_end - 10);
    const std::size_t ph_pos = line.find("\"ph\": \"");
    ASSERT_NE(ph_pos, std::string::npos) << line;
    const char ph = line[ph_pos + 7];
    const auto tid = std::make_pair(event_field(line, "pid"),
                                    event_field(line, "tid"));
    if (ph == 'B') {
      ++begins;
      if (name == "drift_accel.layer") ++accel_spans;
      open_spans[tid].push_back(name);
    } else if (ph == 'E') {
      ++ends;
      auto& stack = open_spans[tid];
      ASSERT_FALSE(stack.empty()) << "unmatched E for " << name;
      EXPECT_EQ(stack.back(), name);
      stack.pop_back();
    }
  }
  for (const auto& [track, stack] : open_spans) {
    EXPECT_TRUE(stack.empty())
        << stack.size() << " unclosed span(s) on pid " << track.first
        << " tid " << track.second;
  }
  EXPECT_EQ(begins, ends);
  EXPECT_EQ(accel_spans,
            static_cast<int>(result.mixes.size()));
}

#else  // DRIFT_OBS_OFF

TEST(GraphGolden, SkippedWithoutObservability) {
  GTEST_SKIP() << "DRIFT_OBS_OFF build: no metrics artifact to pin";
}

#endif

}  // namespace
}  // namespace drift
