// Tests for the quantized execution engine and synthetic generators.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/quant_engine.hpp"
#include "nn/synthetic.hpp"
#include "util/rng.hpp"

namespace drift::nn {
namespace {

TensorF laplace_rows(std::uint64_t seed, std::int64_t rows,
                     std::int64_t cols) {
  Rng rng(seed);
  return synth_rows(rng, rows, cols, bert_profile());
}

TEST(QuantEngine, Fp32IsIdentity) {
  QuantEngine engine(QuantEngine::Config{});
  const TensorF x = laplace_rows(1, 8, 16);
  const OperandResult r = engine.process_activation_rows(x);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_FLOAT_EQ(r.effective.at(i), x.at(i));
  }
  EXPECT_DOUBLE_EQ(r.low_fraction, 0.0);
}

TEST(QuantEngine, Int8BoundsError) {
  QuantEngine::Config cfg;
  cfg.mode = QuantMode::kStaticInt8;
  QuantEngine engine(cfg);
  const TensorF x = laplace_rows(2, 8, 16);
  float max_abs = 0.0f;
  for (float v : x.data()) max_abs = std::max(max_abs, std::abs(v));
  const double delta = max_abs / 127.0;
  const OperandResult r = engine.process_activation_rows(x);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_LE(std::abs(r.effective.at(i) - x.at(i)), 0.5 * delta + 1e-6);
  }
}

TEST(QuantEngine, DriftReportsLowFraction) {
  QuantEngine::Config cfg;
  cfg.mode = QuantMode::kDrift;
  cfg.drift.density_threshold = 0.5;
  QuantEngine engine(cfg);
  const TensorF x = laplace_rows(3, 64, 32);
  const OperandResult r = engine.process_activation_rows(x);
  EXPECT_GT(r.low_fraction, 0.3);
  EXPECT_LE(r.low_fraction, 1.0);
}

TEST(QuantEngine, DriftWeightsDynamicToggle) {
  QuantEngine::Config cfg;
  cfg.mode = QuantMode::kDrift;
  cfg.drift.density_threshold = 0.25;
  cfg.dynamic_weights = true;
  const TensorF w = laplace_rows(4, 32, 64);
  QuantEngine dynamic(cfg);
  const OperandResult r_dyn = dynamic.process_weight(w);
  cfg.dynamic_weights = false;
  QuantEngine static_w(cfg);
  const OperandResult r_static = static_w.process_weight(w);
  EXPECT_GT(r_dyn.low_fraction_rows, 0.0);
  EXPECT_DOUBLE_EQ(r_static.low_fraction_rows, 0.0);
}

TEST(QuantEngine, RegionGranularityForConvInputs) {
  QuantEngine::Config cfg;
  cfg.mode = QuantMode::kDrq;
  cfg.region = 4;
  QuantEngine engine(cfg);
  Rng rng(5);
  const TensorF x = synth_chw(rng, 3, 8, 8, 4, cnn_profile());
  const OperandResult r = engine.process_activation_regions(x);
  EXPECT_EQ(r.effective.shape(), x.shape());
  EXPECT_GE(r.low_fraction, 0.0);
}

TEST(QuantEngine, OverallLowFractionIsMacWeighted) {
  QuantEngine engine(QuantEngine::Config{});
  engine.record("small", 1, 1, 1, 1.0, 0.0);       // 1 MAC fully low
  engine.record("big", 100, 100, 100, 0.0, 0.0);   // 1e6 MACs high
  EXPECT_LT(engine.overall_act_low_fraction(), 0.01);
}

TEST(QuantEngine, ModeNames) {
  EXPECT_EQ(to_string(QuantMode::kFloat32), "FP32");
  EXPECT_EQ(to_string(QuantMode::kStaticInt8), "INT8");
  EXPECT_EQ(to_string(QuantMode::kDrq), "DRQ");
  EXPECT_EQ(to_string(QuantMode::kDrift), "Drift");
}

TEST(Synthetic, SampleScalesRespectsOutlierFraction) {
  Rng rng(6);
  SubTensorScaleProfile p;
  p.log_mean = 0.0;
  p.log_sigma = 0.1;
  p.outlier_fraction = 0.2;
  p.outlier_scale = 100.0;
  const auto scales = sample_scales(rng, 5000, p);
  int outliers = 0;
  for (double b : scales) {
    if (b > 10.0) ++outliers;
  }
  EXPECT_NEAR(static_cast<double>(outliers) / 5000.0, 0.2, 0.03);
}

TEST(Synthetic, CorrelationProducesContiguousRuns) {
  Rng rng(7);
  SubTensorScaleProfile smooth = cnn_profile();
  SubTensorScaleProfile rough = llm_profile();
  rough.outlier_fraction = 0.0;
  smooth.outlier_fraction = 0.0;
  auto count_crossings = [&](const SubTensorScaleProfile& p) {
    Rng local(7);
    const auto scales = sample_scales(local, 4000, p);
    const double median = std::exp(p.log_mean);
    int crossings = 0;
    for (std::size_t i = 1; i < scales.size(); ++i) {
      if ((scales[i] > median) != (scales[i - 1] > median)) ++crossings;
    }
    return crossings;
  };
  EXPECT_LT(count_crossings(smooth), count_crossings(rough) / 2);
}

TEST(Synthetic, RowsFollowPerRowLaplaceScales) {
  Rng rng(8);
  SubTensorScaleProfile p;
  p.log_mean = 0.0;
  p.log_sigma = 1.5;
  p.outlier_fraction = 0.0;
  const TensorF x = synth_rows(rng, 64, 2048, p);
  // Per-row mean|.| should vary strongly across rows.
  double lo = 1e30, hi = 0.0;
  for (std::int64_t r = 0; r < 64; ++r) {
    double acc = 0.0;
    for (std::int64_t c = 0; c < 2048; ++c) acc += std::abs(x(r, c));
    acc /= 2048.0;
    lo = std::min(lo, acc);
    hi = std::max(hi, acc);
  }
  EXPECT_GT(hi / lo, 5.0);
}

TEST(Synthetic, StatsSamplerMatchesMaterializedStatistics) {
  // sample_subtensor_stats must agree in distribution with statistics
  // computed from materialized rows.
  SubTensorScaleProfile p;
  p.log_mean = -0.5;
  p.log_sigma = 0.0;  // fixed scale: easy to compare
  p.outlier_fraction = 0.0;
  const std::int64_t n = 512;
  Rng rng_direct(9);
  const auto stats = sample_subtensor_stats(rng_direct, 2000, n, p);
  double mean_of_mean = 0.0, mean_of_max = 0.0;
  for (const auto& s : stats) {
    mean_of_mean += s.mean_abs;
    mean_of_max += s.max_abs;
  }
  mean_of_mean /= static_cast<double>(stats.size());
  mean_of_max /= static_cast<double>(stats.size());
  const double b = std::exp(-0.5);
  EXPECT_NEAR(mean_of_mean, b, 0.05 * b);
  // E[max of n] = b*(ln n + gamma), gamma ~ 0.577.
  const double expected_max = b * (std::log(static_cast<double>(n)) + 0.577);
  EXPECT_NEAR(mean_of_max, expected_max, 0.1 * expected_max);
}

TEST(Synthetic, StatsSamplerMaxNeverBelowMean) {
  Rng rng(10);
  const auto stats = sample_subtensor_stats(rng, 1000, 64, llm_profile());
  for (const auto& s : stats) {
    EXPECT_GE(s.max_abs, s.mean_abs);
    EXPECT_GT(s.mean_abs, 0.0);
  }
}

}  // namespace
}  // namespace drift::nn
