// GoogleTest adapter for the property framework: runs a property under
// the current TEST's name and converts a failing RunReport into one
// gtest failure carrying the seed, the shrunk size, and the one-line
// reproduction command.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "proptest/proptest.hpp"

namespace drift::proptest {

/// Runs `prop` as the current gtest test case.  The reported name is
/// taken from gtest so the printed ctest -R pattern matches exactly.
template <typename Property>
void gtest_check(Property&& prop, const Config& cfg = config_from_env()) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string name =
      std::string(info->test_suite_name()) + "." + info->name();
  const RunReport rep =
      run_property(name, std::forward<Property>(prop), cfg);
  if (!rep.passed) {
    ADD_FAILURE() << "property " << name << " failed after " << rep.cases_run
                  << " case(s)  [seed=" << rep.failing_seed
                  << " size=" << rep.failing_size << "]\n  " << rep.message
                  << "\nreproduce: " << rep.repro;
  }
}

}  // namespace drift::proptest
