// Seeded property-based testing framework for the differential suites.
//
// Design goals, in order:
//   1. *Reproducibility.*  Every randomized case is derived from an
//      explicit 64-bit seed; a failure reports a one-line environment +
//      ctest command that replays exactly that case.
//   2. *Shrinking.*  Generators are parameterized by an integer `size`;
//      on failure the runner replays the failing seed at smaller sizes
//      and reports the smallest size that still fails, so the
//      counterexample a developer debugs is as small as the bug allows.
//   3. *No framework lock-in.*  This header is gtest-free (properties
//      return std::optional<std::string>), so bench/micro_benchmarks
//      can time the same differential corpus that the test suites run.
//
// Environment knobs (also see README "Testing"):
//   DRIFT_PROPTEST_ITERS  cases per property        (default 128)
//   DRIFT_PROPTEST_SEED   base seed of the run      (default 0xD21F7)
//   DRIFT_PROPTEST_SIZE   force every case to one generator size
//                         (only used when reproducing a failure)
//
// Seed schedule: case 0 uses the base seed *itself*, case i > 0 uses a
// SplitMix64 derivation.  This makes `DRIFT_PROPTEST_SEED=<failing>
// DRIFT_PROPTEST_ITERS=1` an exact single-case replay.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/analytical_model.hpp"
#include "core/quantizer.hpp"
#include "core/scheduler.hpp"
#include "core/selector.hpp"
#include "util/rng.hpp"

namespace drift::proptest {

/// SplitMix64 finalizer: decorrelates consecutive case indices.
inline std::uint64_t splitmix(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Iteration/seed control, normally read from the environment.
struct Config {
  int iters = 128;               ///< randomized cases per property
  std::uint64_t seed = 0xD21F7; ///< base seed of the whole run
  int max_size = 16;             ///< generator size cap (cases ramp 1..max)
  int forced_size = 0;           ///< > 0: every case runs at exactly this size
};

inline Config config_from_env() {
  Config c;
  if (const char* v = std::getenv("DRIFT_PROPTEST_ITERS")) {
    const long long n = std::atoll(v);
    if (n > 0) c.iters = static_cast<int>(n);
  }
  if (const char* v = std::getenv("DRIFT_PROPTEST_SEED")) {
    c.seed = std::strtoull(v, nullptr, 0);
  }
  if (const char* v = std::getenv("DRIFT_PROPTEST_SIZE")) {
    const long long n = std::atoll(v);
    if (n > 0) c.forced_size = static_cast<int>(n);
  }
  return c;
}

/// Seed of case `iteration`.  Case 0 is the base seed itself so a
/// one-iteration rerun with DRIFT_PROPTEST_SEED replays a failure.
inline std::uint64_t case_seed(std::uint64_t base, int iteration) {
  return iteration == 0
             ? base
             : splitmix(base + static_cast<std::uint64_t>(iteration));
}

/// Generator size of case `iteration`: ramps linearly from 1 to
/// max_size so early cases are small (cheap, edge-heavy) and later ones
/// exercise larger shapes.
inline int size_for(const Config& cfg, int iteration) {
  if (cfg.forced_size > 0) return cfg.forced_size;
  if (cfg.iters <= 1) return cfg.max_size;
  return 1 + iteration * (cfg.max_size - 1) / (cfg.iters - 1);
}

/// A property returns std::nullopt on success or a failure description.
using Result = std::optional<std::string>;

inline Result pass() { return std::nullopt; }

/// Builds a failure message from any streamable parts.
template <typename... Ts>
Result fail(Ts&&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}

/// Outcome of running one property over the whole case schedule.
struct RunReport {
  bool passed = true;
  int cases_run = 0;
  std::uint64_t failing_seed = 0;
  int failing_size = 0;
  std::string message;  ///< failure description from the property
  std::string repro;    ///< one-line command replaying the failure
};

/// Runs `prop(rng, size)` over the case schedule.  On the first
/// failure, shrinks by replaying the failing seed at ascending smaller
/// sizes (1, 2, 4, ...) and keeps the smallest size that still fails.
template <typename Property>
RunReport run_property(std::string_view name, Property&& prop,
                       const Config& cfg = config_from_env()) {
  RunReport rep;
  for (int i = 0; i < cfg.iters; ++i) {
    const std::uint64_t seed = case_seed(cfg.seed, i);
    const int size = size_for(cfg, i);
    Rng rng(seed);
    Result r = prop(rng, size);
    ++rep.cases_run;
    if (!r) continue;

    rep.passed = false;
    rep.failing_seed = seed;
    rep.failing_size = size;
    rep.message = *r;
    for (int s = 1; s < size; s *= 2) {
      Rng shrink_rng(seed);
      if (Result sr = prop(shrink_rng, s)) {
        rep.failing_size = s;
        rep.message = *sr;
        break;
      }
    }
    std::ostringstream os;
    os << "DRIFT_PROPTEST_SEED=" << rep.failing_seed
       << " DRIFT_PROPTEST_ITERS=1 DRIFT_PROPTEST_SIZE=" << rep.failing_size
       << " ctest --test-dir build -R '" << name << "'";
    rep.repro = os.str();
    return rep;
  }
  return rep;
}

// ---------------------------------------------------------------------
// Generators.  All take the case Rng plus the current size and bias
// toward edge values (dimension 1, all-zero data, boundary magnitudes).
// ---------------------------------------------------------------------

/// Dimension in [lo, lo + 3 + 2*size], with a 10% bias to exactly `lo`.
inline std::int64_t gen_dim(Rng& rng, int size, std::int64_t lo = 1) {
  if (rng.bernoulli(0.1)) return lo;
  return rng.uniform_int(lo, lo + 3 + 2 * static_cast<std::int64_t>(size));
}

/// Laplace-distributed buffer (the distribution Section 2.1 profiles),
/// with deliberate special cases: ~5% all-zero, ~5% constant, and
/// occasional single-spike sub-tensors.
inline std::vector<float> gen_laplace_buffer(Rng& rng, std::int64_t n,
                                             double scale_b) {
  std::vector<float> out(static_cast<std::size_t>(n));
  const double kind = rng.uniform();
  if (kind < 0.05) return out;  // all zeros
  if (kind < 0.10) {            // constant value
    const float v = static_cast<float>(rng.laplace(scale_b));
    std::fill(out.begin(), out.end(), v);
    return out;
  }
  for (auto& v : out) v = static_cast<float>(rng.laplace(scale_b));
  if (kind < 0.20 && n > 0) {  // one dominant spike (heavy-tailed row)
    out[static_cast<std::size_t>(rng.uniform_int(0, n - 1))] =
        static_cast<float>(rng.laplace(16.0 * scale_b));
  }
  return out;
}

/// Random (hp, lp, δ) selector configuration.  hp fixed to the paper's
/// INT8 storage precision; lp spans the lp-sweep of Section 5; δ is
/// log-uniform over the range the Hessian search explores.
inline core::SelectorConfig gen_selector_config(Rng& rng) {
  core::SelectorConfig cfg;
  cfg.hp = core::kInt8;
  const int lp_bits = static_cast<int>(rng.uniform_int(3, 5));
  cfg.lp = core::Precision(lp_bits);
  cfg.density_threshold = std::exp(rng.uniform(std::log(0.01), std::log(10.0)));
  return cfg;
}

/// Eq. 1 calibration with a positive, often awkward (inexact) Δ.
inline core::QuantParams gen_quant_params(Rng& rng, core::Precision hp) {
  core::QuantParams p;
  p.bits = hp;
  p.delta = std::exp(rng.uniform(std::log(1e-3), std::log(1.0)));
  return p;
}

/// Systolic array dimensions in BitGroups.
inline core::ArrayDims gen_array_dims(Rng& rng, int size) {
  return core::ArrayDims{gen_dim(rng, size), gen_dim(rng, size)};
}

/// GEMM problem dims, occasionally empty along one axis.
inline core::GemmDims gen_gemm_dims(Rng& rng, int size) {
  core::GemmDims g{gen_dim(rng, size), gen_dim(rng, size), gen_dim(rng, size)};
  if (rng.bernoulli(0.05)) g.M = 0;
  if (rng.bernoulli(0.05)) g.N = 0;
  return g;
}

/// One layer's precision-split workload: random class mix (including
/// degenerate all-high / all-low mixes) and precision pairs.
inline core::LayerWork gen_layer_work(Rng& rng, int size) {
  core::LayerWork w;
  const std::int64_t span = 4 + 8 * static_cast<std::int64_t>(size);
  w.m_high = rng.uniform_int(0, span);
  w.m_low = rng.uniform_int(0, span);
  w.n_high = rng.uniform_int(0, 2 * span);
  w.n_low = rng.uniform_int(0, 2 * span);
  w.k = rng.uniform_int(1, 16 * static_cast<std::int64_t>(size) + 16);
  if (rng.bernoulli(0.1)) w.m_high = 0;
  if (rng.bernoulli(0.1)) w.n_low = 0;
  w.pa_high = 8;
  w.pw_high = 8;
  w.pa_low = static_cast<int>(rng.uniform_int(2, 4));
  w.pw_low = static_cast<int>(rng.uniform_int(2, 4));
  return w;
}

}  // namespace drift::proptest
