// Tests for the command-line flag parser.
#include <gtest/gtest.h>

#include "util/args.hpp"
#include "util/assert.hpp"

namespace drift {
namespace {

Args parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return Args::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, EqualsSyntax) {
  const Args a = parse({"--model=bert", "--budget=0.05"});
  EXPECT_EQ(a.get_string("model", ""), "bert");
  EXPECT_DOUBLE_EQ(a.get_double("budget", 0), 0.05);
}

TEST(Args, SpaceSyntax) {
  const Args a = parse({"--rows", "24", "--cols", "33"});
  EXPECT_EQ(a.get_int("rows", 0), 24);
  EXPECT_EQ(a.get_int("cols", 0), 33);
}

TEST(Args, BareFlagIsBooleanTrue) {
  const Args a = parse({"--layers", "--verbose"});
  EXPECT_TRUE(a.get_bool("layers"));
  EXPECT_TRUE(a.get_bool("verbose"));
  EXPECT_FALSE(a.get_bool("absent"));
}

TEST(Args, BooleanSpellings) {
  const Args a = parse({"--a=true", "--b=1", "--c=yes", "--d=no"});
  EXPECT_TRUE(a.get_bool("a"));
  EXPECT_TRUE(a.get_bool("b"));
  EXPECT_TRUE(a.get_bool("c"));
  EXPECT_FALSE(a.get_bool("d"));
}

TEST(Args, DefaultsWhenMissing) {
  const Args a = parse({});
  EXPECT_EQ(a.get_string("model", "resnet18"), "resnet18");
  EXPECT_EQ(a.get_int("rows", 24), 24);
  EXPECT_DOUBLE_EQ(a.get_double("budget", 0.05), 0.05);
}

TEST(Args, PositionalArgumentsPreserved) {
  const Args a = parse({"first", "--flag=x", "second"});
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "first");
  EXPECT_EQ(a.positional()[1], "second");
}

TEST(Args, MalformedNumberThrows) {
  const Args a = parse({"--rows=abc"});
  EXPECT_THROW(a.get_int("rows", 0), check_error);
}

TEST(Args, UnqueriedFlagsReported) {
  const Args a = parse({"--known=1", "--typo=2"});
  (void)a.get_int("known", 0);
  const auto stray = a.unqueried();
  ASSERT_EQ(stray.size(), 1u);
  EXPECT_EQ(stray[0], "typo");
}

TEST(Args, HasMarksQueried) {
  const Args a = parse({"--gemm=2x3x4"});
  EXPECT_TRUE(a.has("gemm"));
  EXPECT_TRUE(a.unqueried().empty());
}

}  // namespace
}  // namespace drift
