// Tests for the BitGroup fabric reconfiguration model and the
// controller overhead accounting (Section 4.1-4.2).
#include <gtest/gtest.h>

#include "accel/controller.hpp"
#include "accel/fabric.hpp"
#include "nn/precision_mix.hpp"
#include "util/assert.hpp"

namespace drift::accel {
namespace {

TEST(Fabric, PowerOnDefaultIsOneValidArray) {
  BitGroupFabric fabric({4, 5});
  EXPECT_EQ(fabric.current_r(), 4);
  EXPECT_EQ(fabric.current_c(), 5);
  EXPECT_EQ(fabric.validate(), "");
  for (std::int64_t r = 0; r < 4; ++r) {
    for (std::int64_t c = 0; c < 5; ++c) {
      EXPECT_EQ(fabric.links(r, c).act, ActFlow::kEast);
      EXPECT_EQ(fabric.links(r, c).psum, PsumFlow::kNorth);
    }
  }
}

TEST(Fabric, SplitProducesFourValidSubArrays) {
  BitGroupFabric fabric({24, 33});
  fabric.configure_split(9, 12);
  EXPECT_EQ(fabric.validate(), "");
  const auto subs = fabric.sub_arrays();
  ASSERT_EQ(subs.size(), 4u);
  EXPECT_EQ(subs[0].rows, 9);
  EXPECT_EQ(subs[0].cols, 12);
  EXPECT_EQ(subs[3].rows, 15);
  EXPECT_EQ(subs[3].cols, 21);
  std::int64_t total = 0;
  for (const auto& s : subs) total += s.rows * s.cols;
  EXPECT_EQ(total, 24 * 33);
}

TEST(Fabric, TopHalfDrainsNorthBottomDrainsSouth) {
  BitGroupFabric fabric({8, 8});
  fabric.configure_split(3, 4);
  EXPECT_EQ(fabric.links(0, 0).psum, PsumFlow::kNorth);
  EXPECT_EQ(fabric.links(2, 7).psum, PsumFlow::kNorth);
  EXPECT_EQ(fabric.links(3, 0).psum, PsumFlow::kSouth);
  EXPECT_EQ(fabric.links(7, 7).psum, PsumFlow::kSouth);
  EXPECT_EQ(fabric.links(0, 3).act, ActFlow::kEast);
  EXPECT_EQ(fabric.links(0, 4).act, ActFlow::kWest);
}

TEST(Fabric, ReconfigureCountsOnlyChangedLinks) {
  BitGroupFabric fabric({8, 8});
  fabric.configure_split(4, 4);
  // Same split again: nothing to rewrite.
  EXPECT_EQ(fabric.configure_split(4, 4), 0);
  // Moving the row cut by one affects exactly one row of psum links.
  EXPECT_EQ(fabric.configure_split(5, 4), 8);
}

TEST(Fabric, ReconfigureCyclesZeroWhenUnchanged) {
  BitGroupFabric fabric({8, 8});
  fabric.configure_split(4, 4);
  EXPECT_EQ(fabric.reconfigure_cycles(4, 4), 0);
  EXPECT_GT(fabric.reconfigure_cycles(2, 4), 0);
}

TEST(Fabric, DegenerateSplitsAreValid) {
  BitGroupFabric fabric({6, 6});
  for (std::int64_t r : {0L, 6L}) {
    for (std::int64_t c : {0L, 6L}) {
      fabric.configure_split(r, c);
      EXPECT_EQ(fabric.validate(), "") << "r=" << r << " c=" << c;
    }
  }
}

TEST(Fabric, OutOfRangeSplitThrows) {
  BitGroupFabric fabric({4, 4});
  EXPECT_THROW(fabric.configure_split(5, 0), drift::check_error);
  EXPECT_THROW(fabric.configure_split(0, -1), drift::check_error);
}

TEST(Controller, IndexBufferAndOverlapOnBert) {
  nn::MixConfig cfg;
  cfg.algo = nn::MixAlgorithm::kDrift;
  cfg.noise_budget = 0.05;
  const auto mixes = nn::build_mixes(nn::make_bert_base(), cfg);
  const auto report = evaluate_controller(mixes, {24, 33});
  ASSERT_EQ(report.layers.size(), mixes.size());
  // The paper's "no additional overhead" claim: the per-layer control
  // work hides under the previous layer's compute, and the index
  // records fit the provisioned buffer.
  EXPECT_TRUE(report.fits_index_buffer);
  EXPECT_GT(report.overlapped_fraction, 0.85);
  EXPECT_GT(report.peak_index_bytes, 0);
}

TEST(Controller, IndexBitsAreFourPerSubtensor) {
  nn::MixConfig cfg;
  cfg.algo = nn::MixAlgorithm::kDrift;
  const auto mixes = nn::build_mixes(nn::make_deit_s(), cfg);
  const auto report = evaluate_controller(mixes, {24, 33});
  for (std::size_t i = 0; i < mixes.size(); ++i) {
    EXPECT_EQ(report.layers[i].index_bits,
              4 * (mixes[i].layer.dims.M + mixes[i].layer.dims.N));
  }
}

TEST(Controller, SelectionCyclesScaleWithThroughput) {
  nn::MixConfig cfg;
  cfg.algo = nn::MixAlgorithm::kDrift;
  const auto mixes = nn::build_mixes(nn::make_deit_s(), cfg);
  ControllerConfig slow;
  slow.selector_throughput = 1;
  ControllerConfig fast;
  fast.selector_throughput = 4;
  const auto r_slow = evaluate_controller(mixes, {24, 33}, slow);
  const auto r_fast = evaluate_controller(mixes, {24, 33}, fast);
  for (std::size_t i = 0; i < mixes.size(); ++i) {
    EXPECT_GE(r_slow.layers[i].selection_cycles,
              r_fast.layers[i].selection_cycles);
  }
}

}  // namespace
}  // namespace drift::accel
