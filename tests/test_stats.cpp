// Tests for src/stats: distributions, summaries, fitting, histograms.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/distribution.hpp"
#include "stats/fit.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace drift::stats {
namespace {

TEST(Laplace, PdfIntegratesToOneNumerically) {
  const Laplace d(0.8);
  double integral = 0.0;
  const double dx = 0.001;
  for (double x = -20.0; x < 20.0; x += dx) integral += d.pdf(x) * dx;
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(Laplace, CdfMatchesPdfDerivative) {
  const Laplace d(1.3);
  for (double x : {-3.0, -0.5, 0.0, 0.7, 2.2}) {
    const double eps = 1e-5;
    const double numeric = (d.cdf(x + eps) - d.cdf(x - eps)) / (2 * eps);
    EXPECT_NEAR(numeric, d.pdf(x), 1e-5);
  }
}

TEST(Laplace, QuantileInvertsCdf) {
  const Laplace d(2.0);
  for (double p : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    EXPECT_NEAR(d.cdf(d.quantile(p)), p, 1e-12);
  }
}

TEST(Laplace, MomentIdentities) {
  const Laplace d(1.5);
  EXPECT_DOUBLE_EQ(d.mean_abs(), 1.5);
  EXPECT_DOUBLE_EQ(d.variance(), 2.0 * 1.5 * 1.5);
}

TEST(Laplace, RejectsNonPositiveScale) {
  EXPECT_THROW(Laplace(0.0), check_error);
  EXPECT_THROW(Laplace(-1.0), check_error);
}

TEST(Exponential, AbsOfLaplaceIsExponential) {
  // Equation 4 of the paper: |Laplace(b)| ~ Exponential(1/b).
  Rng rng(19);
  const double b = 1.2;
  std::vector<float> abs_sample;
  for (int i = 0; i < 50000; ++i) {
    abs_sample.push_back(static_cast<float>(std::abs(rng.laplace(b))));
  }
  const Exponential model(1.0 / b);
  const double ks = ks_statistic(
      abs_sample, [&](double x) { return model.cdf(x); });
  EXPECT_LT(ks, 0.01);
}

TEST(Exponential, QuantileInvertsCdf) {
  const Exponential d(0.7);
  for (double p : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(d.cdf(d.quantile(p)), p, 1e-12);
  }
}

TEST(Normal, CdfKnownValues) {
  const Normal d(0.0, 1.0);
  EXPECT_NEAR(d.cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(d.cdf(1.96), 0.975, 1e-3);
}

TEST(Summary, MatchesHandComputation) {
  const std::vector<float> v = {1.0f, -2.0f, 3.0f, 0.0f};
  const SampleSummary s = summarize(std::span<const float>(v));
  EXPECT_EQ(s.count, 4u);
  EXPECT_FLOAT_EQ(s.min, -2.0f);
  EXPECT_FLOAT_EQ(s.max, 3.0f);
  EXPECT_FLOAT_EQ(s.max_abs, 3.0f);
  EXPECT_NEAR(s.mean, 0.5, 1e-12);
  EXPECT_NEAR(s.mean_abs, 1.5, 1e-12);
  // Population variance of {1,-2,3,0} around mean 0.5.
  EXPECT_NEAR(s.variance, (0.25 + 6.25 + 6.25 + 0.25) / 4.0, 1e-9);
}

TEST(Summary, LaplaceVarianceIdentityHoldsOnLaplaceData) {
  Rng rng(23);
  std::vector<float> v;
  for (int i = 0; i < 100000; ++i) {
    v.push_back(static_cast<float>(rng.laplace(0.9)));
  }
  const SampleSummary s = summarize(std::span<const float>(v));
  // var(Y) == 2*avg|Y|^2 for Laplace data (the paper's Eq. 4 usage).
  EXPECT_NEAR(s.laplace_variance() / s.variance, 1.0, 0.03);
}

TEST(Summary, EmptySampleThrows) {
  std::vector<float> v;
  EXPECT_THROW(summarize(std::span<const float>(v)), drift::check_error);
}

TEST(Fit, LaplaceMleRecoversScale) {
  Rng rng(29);
  std::vector<float> v;
  for (int i = 0; i < 60000; ++i) {
    v.push_back(static_cast<float>(rng.laplace(2.4)));
  }
  const Laplace fit = fit_laplace(v);
  EXPECT_NEAR(fit.scale(), 2.4, 0.05);
}

TEST(Fit, NormalMleRecoversMoments) {
  Rng rng(31);
  std::vector<float> v;
  for (int i = 0; i < 60000; ++i) {
    v.push_back(static_cast<float>(rng.normal(1.0, 0.5)));
  }
  const Normal fit = fit_normal(v);
  EXPECT_NEAR(fit.mean(), 1.0, 0.02);
  EXPECT_NEAR(fit.stddev(), 0.5, 0.02);
}

TEST(Fit, KsPrefersTrueModel) {
  // The Figure 1 claim mechanism: on Laplace data, the Laplace fit has
  // a smaller KS statistic than the Normal fit.
  Rng rng(37);
  std::vector<float> v;
  for (int i = 0; i < 30000; ++i) {
    v.push_back(static_cast<float>(rng.laplace(1.0)));
  }
  const Laplace lap = fit_laplace(v);
  const Normal nor = fit_normal(v);
  const double ks_lap =
      ks_statistic(v, [&](double x) { return lap.cdf(x); });
  const double ks_nor =
      ks_statistic(v, [&](double x) { return nor.cdf(x); });
  EXPECT_LT(ks_lap, ks_nor);
  EXPECT_LT(ks_lap, 0.02);
}

TEST(Fit, LogLikelihoodPrefersTrueModel) {
  Rng rng(41);
  std::vector<float> v;
  for (int i = 0; i < 30000; ++i) {
    v.push_back(static_cast<float>(rng.laplace(1.0)));
  }
  const Laplace lap = fit_laplace(v);
  const Normal nor = fit_normal(v);
  const double ll_lap =
      mean_log_likelihood(v, [&](double x) { return lap.pdf(x); });
  const double ll_nor =
      mean_log_likelihood(v, [&](double x) { return nor.pdf(x); });
  EXPECT_GT(ll_lap, ll_nor);
}

TEST(Fit, ExcessKurtosisDiscriminates) {
  Rng rng(43);
  std::vector<float> lap, nor;
  for (int i = 0; i < 50000; ++i) {
    lap.push_back(static_cast<float>(rng.laplace(1.0)));
    nor.push_back(static_cast<float>(rng.normal()));
  }
  EXPECT_NEAR(excess_kurtosis(lap), 3.0, 0.5);  // Laplace: +3
  EXPECT_NEAR(excess_kurtosis(nor), 0.0, 0.3);  // Normal: 0
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamped to bin 0
  h.add(42.0);   // clamped to bin 9
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_NEAR(h.density(0), 0.5, 1e-12);
}

TEST(Histogram, BinCenters) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_NEAR(h.bin_center(0), 0.125, 1e-12);
  EXPECT_NEAR(h.bin_center(3), 0.875, 1e-12);
}

TEST(Histogram, AsciiRendersOneLinePerBin) {
  Histogram h(0.0, 1.0, 5);
  for (int i = 0; i < 10; ++i) h.add(0.5);
  const std::string art = h.ascii(20);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 5);
  EXPECT_NE(art.find('#'), std::string::npos);
}

}  // namespace
}  // namespace drift::stats
