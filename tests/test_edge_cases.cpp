// Cross-module edge cases and extra property sweeps.
#include <gtest/gtest.h>

#include "core/analytical_model.hpp"
#include "core/quantizer.hpp"
#include "nn/proxy.hpp"
#include "nn/workload.hpp"
#include "systolic/stall_model.hpp"
#include "tensor/subtensor.hpp"
#include "util/assert.hpp"

namespace drift {
namespace {

TEST(EdgeCases, EmptyRunPatternCostsNothing) {
  const std::vector<bool> empty;
  const auto r = systolic::run_switching_exe_cycles(empty, 1, 2, 4);
  EXPECT_EQ(r.exe_cycles, 0);
  EXPECT_EQ(r.switches, 0);
}

TEST(EdgeCases, SingleRowPatterns) {
  for (bool low : {true, false}) {
    const std::vector<bool> one = {low};
    const auto r = systolic::run_switching_exe_cycles(one, 1, 2, 100);
    EXPECT_EQ(r.exe_cycles, low ? 1 : 2);
    EXPECT_EQ(r.switches, 0);
    EXPECT_FALSE(r.fell_back_to_high && low);
  }
}

TEST(EdgeCases, WsLatencySingleElementGemm) {
  // M = K = N = 1 on a 1x1 array: preload 1 + (1 + 1 + 1 - 2) = 2, and
  // repetitions ceil(8/4) * ceil(8/16) = 2 * 1.
  EXPECT_EQ(core::ws_latency_cycles({1, 1, 1}, 8, 8, {1, 1}), 2 * 2);
  EXPECT_EQ(core::ws_latency_cycles({1, 1, 1}, 4, 4, {1, 1}), 2);
}

TEST(EdgeCases, WsLatencyScalesLinearlyInM) {
  const core::ArrayDims a{8, 8};
  const auto t1 = core::ws_latency_cycles({100, 64, 64}, 8, 8, a);
  const auto t2 = core::ws_latency_cycles({200, 64, 64}, 8, 8, a);
  // Reps are M-independent, so the delta is exactly reps * 100.
  const auto reps = core::ws_tile_repetitions({100, 64, 64}, 8, 8, a);
  EXPECT_EQ(t2 - t1, reps * 100);
}

TEST(EdgeCases, PartitionRowsRejectsNonMatrix) {
  EXPECT_THROW(partition_rows(Shape{2, 3, 4}), check_error);
  EXPECT_THROW(partition_rows(Shape{4, 0}), check_error);
}

TEST(EdgeCases, QuantizeOneElementTensor) {
  const std::vector<float> v = {-3.25f};
  const auto p = core::compute_quant_params(v, core::kInt8);
  EXPECT_EQ(core::quantize_value(-3.25f, p), -127);
  EXPECT_NEAR(core::dequantize_value(-127, p), -3.25f, 1e-6);
}

TEST(EdgeCases, ConvertToLowIdentityForEqualPrecisions) {
  // hp == lp: the only choice is (0, 0) and conversion is the identity
  // on the representable range.
  const core::ConversionChoice id{0, 0};
  for (std::int32_t q = -127; q <= 127; ++q) {
    EXPECT_EQ(core::convert_to_low(q, core::kInt8, id), q);
  }
}

TEST(EdgeCases, BloomWorkloadShapes) {
  const auto spec = nn::make_bloom_7b1(512);
  bool saw_head = false;
  for (const auto& l : spec.layers) {
    if (l.name == "lm_head") {
      saw_head = true;
      EXPECT_EQ(l.dims.N, 250880);  // BLOOM's multilingual vocab
      EXPECT_EQ(l.dims.K, 4096);
    }
    EXPECT_GT(l.dims.macs(), 0);
  }
  EXPECT_TRUE(saw_head);
  // 30 blocks x 6 GEMM groups + head.
  EXPECT_EQ(spec.layers.size(), 7u);
}

TEST(EdgeCases, LmProxyCalibratedScaleHitsTarget) {
  nn::LmProxy::Config cfg;
  cfg.samples = 8;
  cfg.target_base_ppl = 10.0;
  const nn::LmProxy proxy(cfg);
  EXPECT_GT(proxy.calibrated_scale(), 0.0);
  nn::QuantEngine::Config ecfg;  // FP32
  nn::QuantEngine engine(ecfg);
  EXPECT_NEAR(proxy.evaluate(engine).metric, 10.0, 0.05);
}

TEST(EdgeCases, ProxiesHonorSampleCounts) {
  nn::CnnProxy::Config cfg;
  cfg.samples = 7;
  const nn::CnnProxy proxy(cfg);
  nn::QuantEngine::Config ecfg;
  nn::QuantEngine engine(ecfg);
  // 7 samples -> accuracy is a multiple of 1/7.
  const double acc = proxy.evaluate(engine).metric;
  const double scaled = acc * 7.0;
  EXPECT_NEAR(scaled, std::round(scaled), 1e-9);
}

class RunSwitchingFallbackBoundary
    : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(RunSwitchingFallbackBoundary, FallbackExactlyWhenMixedCostlier) {
  // Construct a pattern whose mixed cost straddles the all-high cost
  // as the switch penalty grows.
  const std::int64_t penalty = GetParam();
  std::vector<bool> pattern;
  for (int i = 0; i < 50; ++i) {
    pattern.push_back(true);
    pattern.push_back(false);
  }
  const auto r = systolic::run_switching_exe_cycles(pattern, 1, 2, penalty);
  const std::int64_t weighted = 50 * 1 + 50 * 2;
  const std::int64_t mixed = weighted + r.switches * penalty;
  const std::int64_t all_high = 100 * 2;
  EXPECT_EQ(r.fell_back_to_high, mixed > all_high);
  EXPECT_EQ(r.exe_cycles, std::min(mixed, all_high));
}

INSTANTIATE_TEST_SUITE_P(Penalties, RunSwitchingFallbackBoundary,
                         ::testing::Values(0, 1, 2, 8, 64));

}  // namespace
}  // namespace drift
