// Tests for the dynamic precision selector (Equations 5-6) and the
// DynamicQuantizer / PrecisionMap pipeline.
#include <gtest/gtest.h>

#include <cmath>

#include "core/capability.hpp"
#include "core/selector.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace drift::core {
namespace {

QuantParams params_with_range(double max_abs) {
  QuantParams p;
  p.bits = kInt8;
  p.delta = max_abs / 127.0;
  return p;
}

TEST(ComputeStats, MatchesDirectComputation) {
  std::vector<float> buffer = {1.0f, -4.0f, 2.0f, 0.0f};
  SubTensorView view(std::vector<::drift::Run>{{0, 4}});
  const SubTensorStats s = compute_stats(view, buffer);
  EXPECT_DOUBLE_EQ(s.max_abs, 4.0);
  EXPECT_DOUBLE_EQ(s.mean_abs, 7.0 / 4.0);
  EXPECT_DOUBLE_EQ(s.laplace_variance(), 2.0 * (7.0 / 4.0) * (7.0 / 4.0));
}

TEST(SelectPrecision, EquationFiveClipCount) {
  // Tensor range 127*Δ = 12.7; a sub-tensor with max 1.5: Eq. 5 gives
  // hc = floor(log2(12.7/1.5)) = 3, but the exact 4-bit range at
  // (hc=3, lc=1) is 7*2*0.1 = 1.4 < 1.5, so the selector lowers the
  // clip to hc = 2 (range 2.8) — the hardware's exact-coverage check.
  const QuantParams p = params_with_range(12.7);
  SubTensorStats s;
  s.max_abs = 1.5;
  s.mean_abs = 0.6;
  SelectorConfig cfg;
  cfg.density_threshold = 0.0;  // isolate the RR step
  const PrecisionDecision d = select_precision(s, p, cfg);
  EXPECT_TRUE(d.use_low);
  EXPECT_EQ(d.choice.hc, 2);
  EXPECT_EQ(d.choice.lc, 2);
}

TEST(SelectPrecision, EquationFiveFastPathWhenExact) {
  // When the Eq. 5 clip already covers max(|Y|) exactly, it is kept:
  // max 1.2 -> hc = floor(log2(12.7/1.2)) = 3, range 1.4 >= 1.2.
  const QuantParams p = params_with_range(12.7);
  SubTensorStats s;
  s.max_abs = 1.2;
  s.mean_abs = 0.6;
  SelectorConfig cfg;
  cfg.density_threshold = 0.0;
  const PrecisionDecision d = select_precision(s, p, cfg);
  EXPECT_TRUE(d.use_low);
  EXPECT_EQ(d.choice.hc, 3);
  EXPECT_EQ(d.choice.lc, 1);
}

TEST(SelectPrecision, FullRangeSubTensorCannotGoLow) {
  // A sub-tensor spanning the whole tensor range exceeds the exact
  // 4-bit representable span (112Δ < 127Δ) and must stay 8-bit no
  // matter how permissive the density threshold is.
  const QuantParams p = params_with_range(12.7);
  SubTensorStats s;
  s.max_abs = 12.7;
  s.mean_abs = 5.0;
  SelectorConfig cfg;
  cfg.density_threshold = 0.0;
  EXPECT_FALSE(select_precision(s, p, cfg).use_low);
}

TEST(SelectPrecision, RangeCriterionIsSatisfiedByChosenClip) {
  // Property (Eq. 5): RR of the chosen rendering always covers
  // max(|Y|).
  const QuantParams p = params_with_range(10.0);
  SelectorConfig cfg;
  cfg.density_threshold = 0.0;
  Rng rng(61);
  for (int i = 0; i < 500; ++i) {
    SubTensorStats s;
    s.max_abs = rng.uniform(1e-3, 10.0);
    s.mean_abs = s.max_abs * rng.uniform(0.05, 0.9);
    const PrecisionDecision d = select_precision(s, p, cfg);
    if (d.use_low) {
      // The exact lp range must cover max|Y| (and a fortiori Eq. 5's
      // RR, which upper-bounds it).
      const double exact = static_cast<double>(cfg.lp.max_level()) *
                           (1 << d.choice.lc) * p.delta;
      EXPECT_GE(exact, s.max_abs * (1.0 - 1e-9));
      EXPECT_GE(representation_range(cfg.hp, d.choice.hc, p.delta), exact);
    } else {
      // Rejection at δ=0 only happens for full-range sub-tensors.
      EXPECT_GT(s.max_abs,
                static_cast<double>(cfg.lp.max_level()) *
                    (1 << (cfg.hp.bits() - cfg.lp.bits())) * p.delta);
    }
  }
}

TEST(SelectPrecision, WideSubTensorGetsNoHighClip) {
  // A sub-tensor spanning the full tensor range cannot clip from the
  // high end (Figure 3, second row: hc=0, lc=4).
  const QuantParams p = params_with_range(8.0);
  SubTensorStats s;
  s.max_abs = 6.5;  // > half the range: no high-end clip possible
  s.mean_abs = 2.0;
  SelectorConfig cfg;
  cfg.density_threshold = 0.0;
  const PrecisionDecision d = select_precision(s, p, cfg);
  EXPECT_TRUE(d.use_low);
  EXPECT_EQ(d.choice.hc, 0);
  EXPECT_EQ(d.choice.lc, 4);
}

TEST(SelectPrecision, SmallVarianceFailsDensityAndStaysHigh) {
  // Figure 3, third row: wide range but tiny variance -> the lc-widened
  // step cannot represent the data -> keep 8-bit.
  const QuantParams p = params_with_range(8.0);
  SubTensorStats s;
  s.max_abs = 8.0;     // forces hc = 0, lc = 4
  s.mean_abs = 0.05;   // tiny variance
  SelectorConfig cfg;
  cfg.density_threshold = 1.0;
  const PrecisionDecision d = select_precision(s, p, cfg);
  EXPECT_FALSE(d.use_low);
}

TEST(SelectPrecision, EquationSixThresholdBoundary) {
  const QuantParams p = params_with_range(12.7);  // delta = 0.1
  SubTensorStats s;
  s.max_abs = 6.0;  // hc = 0, lc = 4 -> RD = 1.6
  SelectorConfig cfg;
  cfg.density_threshold = 1.0;
  // Code-unit criterion: 2*mean_abs^2 / (RD * Δ) >= δ with RD*Δ = 0.16
  // -> boundary mean_abs = sqrt(0.08).
  s.mean_abs = std::sqrt(0.08) * 1.01;
  EXPECT_TRUE(select_precision(s, p, cfg).use_low);
  s.mean_abs = std::sqrt(0.08) * 0.99;
  EXPECT_FALSE(select_precision(s, p, cfg).use_low);
}

TEST(SelectPrecision, HigherThresholdIsMonotonicallyStricter) {
  const QuantParams p = params_with_range(5.0);
  Rng rng(67);
  for (int i = 0; i < 300; ++i) {
    SubTensorStats s;
    s.max_abs = rng.uniform(0.01, 5.0);
    s.mean_abs = s.max_abs * rng.uniform(0.05, 0.95);
    SelectorConfig loose, strict;
    loose.density_threshold = 0.5;
    strict.density_threshold = 4.0;
    // If the strict threshold accepts low precision, the loose one must
    // as well (the accepted set shrinks monotonically in δ).
    if (select_precision(s, p, strict).use_low) {
      EXPECT_TRUE(select_precision(s, p, loose).use_low);
    }
  }
}

TEST(SelectPrecision, AllZeroSubTensorGoesLow) {
  const QuantParams p = params_with_range(5.0);
  SubTensorStats s;  // zeros
  SelectorConfig cfg;
  cfg.density_threshold = 100.0;
  const PrecisionDecision d = select_precision(s, p, cfg);
  EXPECT_TRUE(d.use_low);
  EXPECT_EQ(d.choice.hc, 4);
}

TEST(PrecisionMap, FractionsWeightedCorrectly) {
  SelectorConfig cfg;
  std::vector<PrecisionDecision> decisions = {
      {true, {0, 4}}, {false, {}}, {true, {2, 2}}};
  std::vector<std::int64_t> sizes = {10, 80, 10};
  const PrecisionMap map(std::move(decisions), std::move(sizes), cfg);
  EXPECT_NEAR(map.low_fraction_by_count(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(map.low_fraction_by_elements(), 0.2, 1e-12);
  EXPECT_EQ(map.total_elements(), 100);
}

TEST(DynamicQuantizer, LowRenderingErrorRespectsChosenDensity) {
  // End-to-end property: applying the dynamic quantizer yields
  // per-element error at most half the chosen step of that sub-tensor.
  Rng rng(71);
  const std::int64_t rows = 32, cols = 64;
  TensorF x(Shape{rows, cols});
  for (std::int64_t r = 0; r < rows; ++r) {
    const double b = std::exp(rng.normal(-1.0, 1.0));
    for (std::int64_t c = 0; c < cols; ++c) {
      x(r, c) = static_cast<float>(rng.laplace(b));
    }
  }
  const auto views = partition_rows(x.shape());
  const QuantParams params = compute_quant_params(x.data(), kInt8);
  SelectorConfig cfg;
  cfg.density_threshold = 1.0;
  const DynamicQuantizer dq(cfg);
  const PrecisionMap map = dq.select(x.data(), views, params);
  const auto rendered = dq.apply(x.data(), views, params, map);

  for (std::size_t v = 0; v < views.size(); ++v) {
    const auto& d = map.decision(v);
    const double step =
        d.use_low ? params.delta * (1 << d.choice.lc) : params.delta;
    // Double rounding (FP32 -> INT8 -> INT4) costs at most half of each
    // step: (Δ + 2^lc Δ) / 2.
    const double bound = 0.5 * (step + params.delta) + 1e-5;
    for (const ::drift::Run& run : views[v].runs()) {
      for (std::int64_t i = 0; i < run.length; ++i) {
        const auto idx = static_cast<std::size_t>(run.offset + i);
        EXPECT_LE(std::abs(rendered[idx] - x.data()[idx]), bound);
      }
    }
  }
}

TEST(DynamicQuantizer, LaplaceRowsMostlySelectLow) {
  // Distribution-faithful data (what Section 2.1 profiles) should
  // yield a high 4-bit fraction at a moderate threshold.
  Rng rng(73);
  const std::int64_t rows = 128, cols = 64;
  TensorF x(Shape{rows, cols});
  for (std::int64_t r = 0; r < rows; ++r) {
    const double b = std::exp(rng.normal(-1.0, 0.8));
    for (std::int64_t c = 0; c < cols; ++c) {
      x(r, c) = static_cast<float>(rng.laplace(b));
    }
  }
  const auto views = partition_rows(x.shape());
  const QuantParams params = compute_quant_params(x.data(), kInt8);
  SelectorConfig cfg;
  cfg.density_threshold = 0.5;
  const DynamicQuantizer dq(cfg);
  const PrecisionMap map = dq.select(x.data(), views, params);
  EXPECT_GT(map.low_fraction_by_elements(), 0.5);
}

TEST(SelectPrecision, ExactRRBoundaryIsInclusive) {
  // max(|Y|) sitting *exactly* on an RR boundary must keep that clip:
  // the exact 8->4 range at (hc=3, lc=1) is 14Δ, so max_abs == 14Δ
  // selects hc=3 while the next representable value above drops to
  // hc=2.  (The old floor(log2(...)) shortcut could lose the boundary
  // to floating-point rounding; the selector now compares the exact
  // range directly.)
  const QuantParams p = params_with_range(12.7);  // Δ = 0.1, inexact
  SelectorConfig cfg;
  cfg.density_threshold = 0.0;
  SubTensorStats s;
  s.mean_abs = 0.01;

  s.max_abs = 14.0 * p.delta;
  const PrecisionDecision on = select_precision(s, p, cfg);
  EXPECT_TRUE(on.use_low);
  EXPECT_EQ(on.choice.hc, 3);

  s.max_abs = std::nextafter(14.0 * p.delta, 1e9);
  const PrecisionDecision above = select_precision(s, p, cfg);
  EXPECT_TRUE(above.use_low);
  EXPECT_EQ(above.choice.hc, 2);
}

TEST(SelectPrecision, WidePrecisionBoundaryKeepsTheClipBit) {
  // Near-full-width lp (16 -> 15, a single clip bit) is where a
  // floating-point log2 of the range ratio can land an ulp below 1 and
  // silently lose the clip.  The exact-search selector must keep hc=1
  // whenever the 15-bit range at lc=0 (16383Δ) covers max(|Y|).
  QuantParams p;
  p.bits = Precision(16);
  p.delta = 3.3 / 32767.0;  // inexact Δ
  SelectorConfig cfg;
  cfg.hp = Precision(16);
  cfg.lp = Precision(15);
  cfg.density_threshold = 0.0;
  SubTensorStats s;
  s.mean_abs = 1e-4;

  s.max_abs = 16383.0 * p.delta;
  const PrecisionDecision on = select_precision(s, p, cfg);
  EXPECT_TRUE(on.use_low);
  EXPECT_EQ(on.choice.hc, 1);
  EXPECT_EQ(on.choice.lc, 0);

  s.max_abs = 32766.0 * p.delta;  // needs lc=1, the only other choice
  const PrecisionDecision wide = select_precision(s, p, cfg);
  EXPECT_TRUE(wide.use_low);
  EXPECT_EQ(wide.choice.hc, 0);
  EXPECT_EQ(wide.choice.lc, 1);

  s.max_abs = 32767.0 * p.delta;  // full range: no 15-bit rendering fits
  EXPECT_FALSE(select_precision(s, p, cfg).use_low);
}

TEST(SelectPrecision, SingleElementSubTensor) {
  // A one-element sub-tensor is the degenerate case of the pooling
  // statistics: max == mean == |x|.  The decision must be identical to
  // feeding those stats directly.
  const QuantParams p = params_with_range(12.7);
  SelectorConfig cfg;
  cfg.density_threshold = 0.0;
  const std::vector<float> buffer = {-1.25f};
  SubTensorView view(std::vector<::drift::Run>{{0, 1}});
  const SubTensorStats s = compute_stats(view, buffer);
  EXPECT_DOUBLE_EQ(s.max_abs, 1.25);
  EXPECT_DOUBLE_EQ(s.mean_abs, 1.25);
  const PrecisionDecision d = select_precision(s, p, cfg);
  EXPECT_TRUE(d.use_low);
  // Largest hc with 7 * 2^lc * Δ >= 1.25: hc=3 (range 1.4).
  EXPECT_EQ(d.choice.hc, 3);
}

TEST(SelectPrecision, AllZeroSubTensorGoesLowAtMaximalClip) {
  // Zero data is exactly representable at any precision; even an
  // absurdly strict density threshold must not force it to 8 bits.
  const QuantParams p = params_with_range(12.7);
  SelectorConfig cfg;
  cfg.density_threshold = 1e12;
  SubTensorStats s;  // all-zero stats
  const PrecisionDecision d = select_precision(s, p, cfg);
  EXPECT_TRUE(d.use_low);
  EXPECT_EQ(d.choice.hc, cfg.hp.bits() - cfg.lp.bits());
  EXPECT_EQ(d.choice.lc, 0);
}

TEST(DynamicQuantizer, MismatchedParamsPrecisionThrows) {
  TensorF x(Shape{2, 2}, 1.0f);
  const auto views = partition_rows(x.shape());
  QuantParams params = compute_quant_params(x.data(), kInt4);
  const DynamicQuantizer dq(SelectorConfig{});
  EXPECT_THROW(dq.select(x.data(), views, params), drift::check_error);
}

}  // namespace
}  // namespace drift::core
