// Differential suite: the SIMD-dispatched integer GEMM path vs. the
// scalar oracle, bit-exact across backends and thread counts.
//
// Integer dot products are exact under any reordering, so the vector
// microkernels (AVX2 maddubs-style blocks, packed-nibble unpack in
// register) must reproduce the naive int64 reference *bitwise* — as
// must the whole int_gemm_nt entry point at 1, 2, and 8 threads, with
// and without DRIFT_FORCE_SCALAR-style pinning.  quantize_rows codes
// are pinned the same way through the llround-exact row kernel.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nn/int_gemm.hpp"
#include "nn/simd/kernel_dispatch.hpp"
#include "nn/simd/pack.hpp"
#include "proptest/proptest_gtest.hpp"
#include "ref/ref_kernels.hpp"
#include "util/thread_pool.hpp"

namespace drift {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

/// Restores the process-wide pool to its default size on scope exit.
struct PoolGuard {
  ~PoolGuard() { util::ThreadPool::instance().resize(0); }
};

/// Restores the force-scalar override on scope exit.
struct ForceScalarGuard {
  bool prev = nn::simd::force_scalar();
  ~ForceScalarGuard() { nn::simd::set_force_scalar(prev); }
};

std::vector<std::int8_t> gen_s8_row(Rng& rng, std::int64_t n) {
  std::vector<std::int8_t> row(static_cast<std::size_t>(n));
  for (auto& v : row) {
    v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  }
  return row;
}

std::vector<std::uint8_t> gen_s4_row(Rng& rng, std::int64_t n,
                                     std::vector<std::int32_t>* codes_out) {
  std::vector<std::int32_t> codes(static_cast<std::size_t>(n));
  for (auto& c : codes) {
    c = static_cast<std::int32_t>(rng.uniform_int(-8, 7));
  }
  std::vector<std::uint8_t> packed(
      static_cast<std::size_t>(nn::simd::packed_size(n)));
  nn::simd::pack_nibbles(codes, packed);
  *codes_out = std::move(codes);
  return packed;
}

TEST(PropSimdGemm, DotMicrokernelsBitExactVsScalarOracle) {
  ForceScalarGuard guard;
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    // Lengths past one vector block (32 codes for s8, 64 for s4s4)
    // plus ragged tails; gen_dim keeps the length-1 edge in play.
    const std::int64_t n = proptest::gen_dim(rng, 16 * size);
    const auto a8 = gen_s8_row(rng, n);
    const auto b8 = gen_s8_row(rng, n);
    std::vector<std::int32_t> a4_codes, b4_codes;
    const auto a4 = gen_s4_row(rng, n, &a4_codes);
    const auto b4 = gen_s4_row(rng, n, &b4_codes);

    // Naive int64 references, operating on the unpacked codes.
    std::int64_t want_s8s8 = 0, want_s8s4 = 0, want_s4s4 = 0;
    for (std::int64_t k = 0; k < n; ++k) {
      const auto i = static_cast<std::size_t>(k);
      want_s8s8 += static_cast<std::int64_t>(a8[i]) * b8[i];
      want_s8s4 += static_cast<std::int64_t>(a8[i]) * b4_codes[i];
      want_s4s4 += static_cast<std::int64_t>(a4_codes[i]) * b4_codes[i];
    }

    for (const bool force : {true, false}) {
      nn::simd::set_force_scalar(force);
      const auto& kt = nn::simd::active();
      const std::int64_t s8s8 = kt.dot_s8s8(a8.data(), b8.data(), n);
      const std::int64_t s8s4 = kt.dot_s8s4(a8.data(), b4.data(), n);
      const std::int64_t s4s4 = kt.dot_s4s4(a4.data(), b4.data(), n);
      if (s8s8 != want_s8s8 || s8s4 != want_s8s4 || s4s4 != want_s4s4) {
        return proptest::fail("dot kernel (", kt.name, ") diverged at n=",
                              n, ": s8s8 ", s8s8, "/", want_s8s8, ", s8s4 ",
                              s8s4, "/", want_s8s4, ", s4s4 ", s4s4, "/",
                              want_s4s4);
      }
    }
    return proptest::pass();
  });
}

TEST(PropSimdGemm, QuantizeRowsBitExactAcrossBackends) {
  PoolGuard pool;
  ForceScalarGuard guard;
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const std::int64_t rows = proptest::gen_dim(rng, size);
    const std::int64_t cols = proptest::gen_dim(rng, 4 * size);
    const TensorF x(Shape{rows, cols},
                    proptest::gen_laplace_buffer(rng, rows * cols, 0.5));
    const auto cfg = proptest::gen_selector_config(rng);
    const double budget =
        std::exp(rng.uniform(std::log(1e-3), std::log(1.0)));

    nn::simd::set_force_scalar(true);
    const auto want = nn::quantize_rows(x, cfg, budget);
    nn::simd::set_force_scalar(false);
    const auto got = nn::quantize_rows(x, cfg, budget);

    for (std::size_t r = 0; r < want.rows.size(); ++r) {
      if (got.rows[r].use_low != want.rows[r].use_low ||
          got.rows[r].choice.hc != want.rows[r].choice.hc ||
          got.rows[r].choice.lc != want.rows[r].choice.lc) {
        return proptest::fail("precision decision for row ", r,
                              " flipped between backends");
      }
    }
    for (std::int64_t i = 0; i < want.codes.numel(); ++i) {
      if (got.codes.at(i) != want.codes.at(i)) {
        return proptest::fail("code at flat ", i,
                              " differs between backends: ",
                              got.codes.at(i), " vs ", want.codes.at(i));
      }
    }
    return proptest::pass();
  });
}

proptest::Result expect_bitwise_equal(const TensorF& got, const TensorF& want,
                                      const char* what, int threads) {
  if (got.shape().numel() != want.shape().numel()) {
    return proptest::fail(what, ": shape mismatch");
  }
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    const float g = got.at(i);
    const float w = want.at(i);
    if (g != w) {
      return proptest::fail(what, " differs from oracle at flat ", i,
                            " with ", threads, " thread(s): ", g, " vs ", w,
                            " (delta=", std::abs(g - w), ")");
    }
  }
  return proptest::pass();
}

TEST(PropSimdGemm, IntGemmBitExactVsRefAcrossThreadsAndBackends) {
  PoolGuard pool;
  ForceScalarGuard guard;
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const std::int64_t m = proptest::gen_dim(rng, size);
    const std::int64_t k = proptest::gen_dim(rng, 4 * size);
    const std::int64_t n = proptest::gen_dim(rng, size);
    auto cfg = proptest::gen_selector_config(rng);
    // A quarter of the cases use an hp too wide for int8 so the
    // legacy (non-routed) fallback stays under the same differential.
    if (rng.bernoulli(0.25)) cfg.hp = core::Precision(10);
    const double budget =
        std::exp(rng.uniform(std::log(1e-3), std::log(1.0)));

    const TensorF a(Shape{m, k},
                    proptest::gen_laplace_buffer(rng, m * k, 0.5));
    const TensorF w(Shape{n, k},
                    proptest::gen_laplace_buffer(rng, n * k, 0.5));
    const auto qa = nn::quantize_rows(a, cfg, budget);
    const auto qw = nn::quantize_rows(w, cfg, budget);

    std::vector<double> act_scale(static_cast<std::size_t>(m));
    std::vector<double> wgt_scale(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < m; ++i) {
      act_scale[static_cast<std::size_t>(i)] = qa.row_scale(i);
    }
    for (std::int64_t j = 0; j < n; ++j) {
      wgt_scale[static_cast<std::size_t>(j)] = qw.row_scale(j);
    }
    const TensorF want =
        ref::int_gemm_nt(qa.codes, qw.codes, act_scale, wgt_scale);

    for (const bool force : {true, false}) {
      nn::simd::set_force_scalar(force);
      for (int threads : kThreadCounts) {
        util::ThreadPool::instance().resize(threads);
        if (auto r = expect_bitwise_equal(
                nn::int_gemm_nt(qa, qw), want,
                force ? "int_gemm_nt[scalar]" : "int_gemm_nt[native]",
                threads)) {
          return r;
        }
      }
    }
    return proptest::pass();
  });
}

}  // namespace
}  // namespace drift
