// Differential suite for the graph runtime (src/graph):
//
//   1. Random straight-line graphs are bitwise-identical to the
//      equivalent nn::Sequential — at 1, 2, and 8 threads and under
//      the forced-scalar kernel backend — because the executor binds
//      layers in insertion order (same rng stream) and runs the same
//      kernels.
//   2. Random DAGs with residual adds and concats match the naive
//      recursive-evaluation oracle in src/ref/ref_graph bit for bit,
//      and every valid topological order produces the same bytes.
//   3. Per-op shape rules are pinned against independent closed forms
//      (position-counting conv/pool arithmetic, left-padded broadcast,
//      head-split divisibility).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/executor.hpp"
#include "graph/graph.hpp"
#include "graph/ops.hpp"
#include "nn/activations.hpp"
#include "nn/attention.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/model.hpp"
#include "nn/norm.hpp"
#include "nn/pooling.hpp"
#include "nn/quant_engine.hpp"
#include "nn/simd/kernel_dispatch.hpp"
#include "proptest/proptest_gtest.hpp"
#include "ref/ref_graph.hpp"
#include "util/thread_pool.hpp"

namespace drift {
namespace {

using graph::Attr;
using graph::AttrMap;
using graph::Dims;

constexpr int kThreadCounts[] = {1, 2, 8};

/// Restores the process-wide pool and the kernel backend on scope exit
/// so a failing property cannot leak state into later tests.
struct BackendGuard {
  bool scalar_before = nn::simd::force_scalar();
  ~BackendGuard() {
    util::ThreadPool::instance().resize(0);
    nn::simd::set_force_scalar(scalar_before);
  }
};

TensorF gen_tensor(Rng& rng, const Dims& dims) {
  std::int64_t n = 1;
  for (const std::int64_t d : dims) n *= d;
  TensorF t(Shape(std::vector<std::int64_t>(dims)),
            proptest::gen_laplace_buffer(rng, n, 0.6));
  return t;
}

proptest::Result expect_bitwise(const TensorF& got, const TensorF& want,
                                const std::string& what) {
  if (got.shape().dims() != want.shape().dims()) {
    return proptest::fail(what, ": shape ",
                          graph::dims_to_string(got.shape().dims()), " vs ",
                          graph::dims_to_string(want.shape().dims()));
  }
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    if (got.at(i) != want.at(i)) {
      return proptest::fail(what, ": differs at flat ", i, ": ", got.at(i),
                            " vs ", want.at(i));
    }
  }
  return proptest::pass();
}

nn::QuantEngine::Config gen_engine_config(Rng& rng) {
  nn::QuantEngine::Config cfg;
  const std::int64_t mode = rng.uniform_int(0, 3);
  cfg.mode = mode == 0   ? nn::QuantMode::kFloat32
             : mode == 1 ? nn::QuantMode::kStaticInt8
             : mode == 2 ? nn::QuantMode::kDrq
                         : nn::QuantMode::kDrift;
  return cfg;
}

// ---------------------------------------------------------------------
// Straight-line chains vs Sequential.
// ---------------------------------------------------------------------

/// One chain step: the graph node to add and the matching hand-built
/// nn layer (constructed later, against a second rng with the same
/// seed, in the same order — the Sequential arm).
struct ChainStep {
  std::string op;
  AttrMap attrs;
};

nn::LayerPtr build_step_layer(const ChainStep& step, const std::string& name,
                              const Dims& in, Rng& rng) {
  const auto attr = [&](const char* key, std::int64_t fallback) {
    const auto it = step.attrs.find(key);
    return it == step.attrs.end() ? fallback : it->second.i;
  };
  if (step.op == "linear") {
    return std::make_unique<nn::Linear>(name, in[1],
                                        attr("out_features", 0), rng);
  }
  if (step.op == "relu") return std::make_unique<nn::ReLU>(name);
  if (step.op == "gelu") return std::make_unique<nn::GELU>(name);
  if (step.op == "softmax") return std::make_unique<nn::Softmax>(name);
  if (step.op == "layernorm") {
    return std::make_unique<nn::LayerNorm>(name, in[1]);
  }
  if (step.op == "attention") {
    return std::make_unique<nn::MultiHeadAttention>(name, in[1],
                                                    attr("heads", 1), rng);
  }
  if (step.op == "conv2d") {
    return std::make_unique<nn::Conv2d>(name, in[0], attr("out_channels", 0),
                                        attr("kernel", 0), attr("stride", 1),
                                        attr("pad", 0), rng);
  }
  if (step.op == "depthwise_conv2d") {
    return std::make_unique<nn::DepthwiseConv2d>(
        name, in[0], attr("kernel", 0), attr("stride", 1), attr("pad", 0),
        rng);
  }
  if (step.op == "maxpool2d") {
    return std::make_unique<nn::MaxPool2d>(name, attr("kernel", 0),
                                           attr("stride", attr("kernel", 0)));
  }
  if (step.op == "avgpool2d") {
    return std::make_unique<nn::AvgPool2d>(name, attr("kernel", 0),
                                           attr("stride", attr("kernel", 0)));
  }
  if (step.op == "batchnorm2d") {
    return std::make_unique<nn::BatchNorm2d>(name, in[0]);
  }
  if (step.op == "global_avgpool") {
    return std::make_unique<nn::GlobalAvgPool>(name);
  }
  if (step.op == "mean_pool_tokens") {
    return std::make_unique<nn::MeanPoolTokens>(name);
  }
  return nullptr;
}

/// Runs the chain through both arms under every thread count (and once
/// forced-scalar), comparing bitwise.  The two arms consume two rng
/// streams seeded identically, in the same construction order.
proptest::Result check_chain(const std::vector<ChainStep>& steps,
                             const Dims& input_dims,
                             const nn::QuantEngine::Config& engine_cfg,
                             std::uint64_t model_seed, Rng& data_rng) {
  graph::GraphBuilder builder("chain", "vit");
  builder.input("x", std::vector<std::int64_t>(input_dims));
  for (std::size_t i = 0; i < steps.size(); ++i) {
    builder.then("n" + std::to_string(i), steps[i].op, steps[i].attrs);
  }
  Rng graph_rng(model_seed);
  graph::GraphExecutor executor(builder.build(), graph_rng);

  Rng seq_rng(model_seed);
  nn::Sequential sequential("seq");
  Dims cur = input_dims;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const std::string name = "n" + std::to_string(i);
    auto layer = build_step_layer(steps[i], name, cur, seq_rng);
    if (layer == nullptr) {
      return proptest::fail("unhandled chain op ", steps[i].op);
    }
    sequential.add(std::move(layer));
    cur = executor.shapes().by_name.at(name);
  }

  const TensorF input = gen_tensor(data_rng, input_dims);
  BackendGuard guard;
  TensorF first_graph_out(Shape{1});
  bool have_first = false;
  for (const int threads : kThreadCounts) {
    util::ThreadPool::instance().resize(threads);
    nn::QuantEngine graph_engine(engine_cfg);
    nn::QuantEngine seq_engine(engine_cfg);
    const TensorF want = sequential.forward(input, seq_engine);
    const TensorF got = executor.run({input}, graph_engine).front();
    auto r = expect_bitwise(got, want,
                            "graph vs Sequential at " +
                                std::to_string(threads) + " thread(s)");
    if (r.has_value()) return r;
    if (have_first) {
      r = expect_bitwise(got, first_graph_out, "graph thread invariance");
      if (r.has_value()) return r;
    } else {
      first_graph_out = got;
      have_first = true;
    }
  }
  util::ThreadPool::instance().resize(0);
  nn::simd::set_force_scalar(true);
  nn::QuantEngine graph_engine(engine_cfg);
  nn::QuantEngine seq_engine(engine_cfg);
  const TensorF want = sequential.forward(input, seq_engine);
  const TensorF got = executor.run({input}, graph_engine).front();
  return expect_bitwise(got, want, "graph vs Sequential forced-scalar");
}

TEST(PropGraph, TokenChainBitwiseEqualsSequentialAcrossThreads) {
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const std::int64_t tokens = proptest::gen_dim(rng, size);
    std::int64_t dim = proptest::gen_dim(rng, size, 2);
    std::vector<ChainStep> steps;
    const std::int64_t len = rng.uniform_int(1, 2 + size / 3);
    Dims cur = {tokens, dim};
    for (std::int64_t i = 0; i < len; ++i) {
      const std::int64_t pick = rng.uniform_int(0, 5);
      ChainStep step;
      if (pick == 0) {
        step.op = "linear";
        const std::int64_t out = proptest::gen_dim(rng, size);
        step.attrs.emplace("out_features", Attr::of_int(out));
        step.attrs.emplace("kind", Attr::of_string("ffn"));
        cur[1] = out;
      } else if (pick == 1) {
        step.op = "relu";
      } else if (pick == 2) {
        step.op = "gelu";
      } else if (pick == 3) {
        step.op = "softmax";
      } else if (pick == 4) {
        step.op = "layernorm";
      } else {
        // Attention needs dim % heads == 0; pick a divisor.
        std::vector<std::int64_t> divisors;
        for (std::int64_t h = 1; h <= cur[1] && h <= 4; ++h) {
          if (cur[1] % h == 0) divisors.push_back(h);
        }
        step.op = "attention";
        step.attrs.emplace(
            "heads",
            Attr::of_int(divisors[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(divisors.size()) - 1))]));
      }
      steps.push_back(std::move(step));
    }
    return check_chain(steps, {tokens, dim}, gen_engine_config(rng),
                       rng.uniform_int(1, 1 << 20), rng);
  });
}

TEST(PropGraph, CnnChainBitwiseEqualsSequentialAcrossThreads) {
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const Dims input_dims = {rng.uniform_int(1, 3),
                             rng.uniform_int(3, 4 + size),
                             rng.uniform_int(3, 4 + size)};
    Dims cur = input_dims;
    std::vector<ChainStep> steps;
    const std::int64_t len = rng.uniform_int(1, 2 + size / 4);
    for (std::int64_t i = 0; i < len; ++i) {
      const std::int64_t pick = rng.uniform_int(0, 5);
      ChainStep step;
      if (pick == 0 || pick == 1) {
        const std::int64_t k = rng.uniform_int(1, 3);
        const std::int64_t s = rng.uniform_int(1, 2);
        const std::int64_t p = rng.uniform_int(0, 1);
        const std::int64_t oh = ref::conv_positions(cur[1], k, s, p);
        const std::int64_t ow = ref::conv_positions(cur[2], k, s, p);
        if (oh <= 0 || ow <= 0) continue;
        if (pick == 0) {
          step.op = "conv2d";
          const std::int64_t out_ch = rng.uniform_int(1, 4);
          step.attrs.emplace("out_channels", Attr::of_int(out_ch));
          cur[0] = out_ch;
        } else {
          step.op = "depthwise_conv2d";
        }
        step.attrs.emplace("kernel", Attr::of_int(k));
        if (s != 1) step.attrs.emplace("stride", Attr::of_int(s));
        if (p != 0) step.attrs.emplace("pad", Attr::of_int(p));
        cur[1] = oh;
        cur[2] = ow;
      } else if (pick == 2 || pick == 3) {
        const std::int64_t k =
            rng.uniform_int(1, std::min<std::int64_t>(3, cur[1]));
        const std::int64_t s = rng.uniform_int(1, 2);
        const std::int64_t oh = ref::pool_positions(cur[1], k, s);
        const std::int64_t ow = ref::pool_positions(cur[2], k, s);
        if (oh <= 0 || ow <= 0) continue;
        step.op = pick == 2 ? "maxpool2d" : "avgpool2d";
        step.attrs.emplace("kernel", Attr::of_int(k));
        step.attrs.emplace("stride", Attr::of_int(s));
        cur[1] = oh;
        cur[2] = ow;
      } else if (pick == 4) {
        step.op = "batchnorm2d";
      } else {
        step.op = "relu";
      }
      steps.push_back(std::move(step));
    }
    if (steps.empty()) steps.push_back(ChainStep{"relu", {}});
    return check_chain(steps, input_dims, gen_engine_config(rng),
                       rng.uniform_int(1, 1 << 20), rng);
  });
}

// ---------------------------------------------------------------------
// Random DAGs vs the recursive oracle; order invariance.
// ---------------------------------------------------------------------

/// One DAG value in the oracle's plain-vector representation.
struct RefVal {
  std::vector<float> data;
  Dims dims;
};

/// Node shape in the generated DAG.
struct DagNode {
  std::string op;
  std::vector<int> operands;  ///< value ids: inputs first, then nodes
  std::int64_t axis = 0;      ///< concat only
};

RefVal eval_ref_node(const DagNode& node,
                     const std::vector<const RefVal*>& args) {
  RefVal out;
  if (node.op == "relu" || node.op == "gelu") {
    out.dims = args[0]->dims;
    out.data.reserve(args[0]->data.size());
    for (const float v : args[0]->data) {
      out.data.push_back(node.op == "relu" ? ref::ref_relu(v)
                                           : ref::ref_gelu(v));
    }
    return out;
  }
  if (node.op == "softmax") {
    out.dims = args[0]->dims;
    const std::int64_t cols = out.dims[1];
    for (std::int64_t r = 0; r * cols <
         static_cast<std::int64_t>(args[0]->data.size()); ++r) {
      const auto row = ref::ref_softmax_row(
          std::span<const float>(args[0]->data)
              .subspan(static_cast<std::size_t>(r * cols),
                       static_cast<std::size_t>(cols)));
      out.data.insert(out.data.end(), row.begin(), row.end());
    }
    return out;
  }
  if (node.op == "add") {
    out.dims = ref::broadcast_shape(args[0]->dims, args[1]->dims);
    out.data = ref::ref_broadcast_add(args[0]->data, args[0]->dims,
                                      args[1]->data, args[1]->dims);
    return out;
  }
  // concat
  std::vector<std::vector<float>> parts;
  std::vector<Dims> dims;
  for (const RefVal* a : args) {
    parts.push_back(a->data);
    dims.push_back(a->dims);
  }
  out.data = ref::ref_concat(parts, dims, node.axis);
  out.dims = dims[0];
  for (std::size_t i = 1; i < dims.size(); ++i) {
    out.dims[static_cast<std::size_t>(node.axis)] +=
        dims[i][static_cast<std::size_t>(node.axis)];
  }
  return out;
}

TEST(PropGraph, DagBitwiseMatchesRecursiveOracle) {
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const std::int64_t rows = proptest::gen_dim(rng, size);
    const std::int64_t cols = proptest::gen_dim(rng, size);
    // Two graph inputs: a matrix and a broadcastable bias row.
    std::vector<Dims> shapes = {{rows, cols}, {cols}};
    const int num_inputs = 2;
    std::vector<DagNode> nodes;
    const std::int64_t count = rng.uniform_int(2, 3 + size / 2);
    for (std::int64_t i = 0; i < count; ++i) {
      const int total = num_inputs + static_cast<int>(nodes.size());
      const auto pick_value = [&](auto&& keep) {
        std::vector<int> candidates;
        for (int v = 0; v < total; ++v) {
          if (keep(shapes[static_cast<std::size_t>(v)])) {
            candidates.push_back(v);
          }
        }
        return candidates;
      };
      const auto any_rank2 =
          pick_value([](const Dims& d) { return d.size() == 2; });
      DagNode node;
      const std::int64_t pick = rng.uniform_int(0, 4);
      if (pick <= 1) {
        node.op = pick == 0 ? "relu" : "gelu";
        node.operands = {static_cast<int>(rng.uniform_int(0, total - 1))};
      } else if (pick == 2) {
        node.op = "softmax";
        node.operands = {any_rank2[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(any_rank2.size()) - 1))]};
      } else if (pick == 3) {
        // add: a rank-2 value plus either a same-shape rank-2 value or
        // the broadcastable row.
        const int a = any_rank2[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(any_rank2.size()) - 1))];
        const Dims& da = shapes[static_cast<std::size_t>(a)];
        const auto same = pick_value([&](const Dims& d) { return d == da; });
        int b;
        if (rng.bernoulli(0.3) && da[1] == cols) {
          b = 1;  // the [cols] bias input
        } else {
          b = same[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(same.size()) - 1))];
        }
        node.op = "add";
        node.operands = rng.bernoulli(0.5) ? std::vector<int>{a, b}
                                           : std::vector<int>{b, a};
      } else {
        // concat 2..3 same-shape rank-2 values along a random axis.
        const int a = any_rank2[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(any_rank2.size()) - 1))];
        const Dims& da = shapes[static_cast<std::size_t>(a)];
        const auto same = pick_value([&](const Dims& d) { return d == da; });
        const std::int64_t parts = rng.uniform_int(2, 3);
        node.op = "concat";
        node.axis = rng.uniform_int(0, 1);
        for (std::int64_t p = 0; p < parts; ++p) {
          node.operands.push_back(same[static_cast<std::size_t>(
              rng.uniform_int(0,
                              static_cast<std::int64_t>(same.size()) - 1))]);
        }
      }
      // Compute the node's shape for the tracking table.
      Dims out_dims;
      if (node.op == "add") {
        out_dims = ref::broadcast_shape(
            shapes[static_cast<std::size_t>(node.operands[0])],
            shapes[static_cast<std::size_t>(node.operands[1])]);
      } else if (node.op == "concat") {
        out_dims = shapes[static_cast<std::size_t>(node.operands[0])];
        for (std::size_t p = 1; p < node.operands.size(); ++p) {
          out_dims[static_cast<std::size_t>(node.axis)] +=
              shapes[static_cast<std::size_t>(node.operands[p])]
                    [static_cast<std::size_t>(node.axis)];
        }
      } else {
        out_dims = shapes[static_cast<std::size_t>(node.operands[0])];
      }
      shapes.push_back(out_dims);
      nodes.push_back(std::move(node));
    }

    // Build the graph: every node is also a graph output so the oracle
    // comparison covers every intermediate.
    graph::Graph g;
    g.name = "dag";
    g.family = "bert";
    g.inputs.push_back(graph::GraphInput{"x", {rows, cols}});
    g.inputs.push_back(graph::GraphInput{"bias", {cols}});
    const auto value_name = [&](int id) {
      if (id == 0) return std::string("x");
      if (id == 1) return std::string("bias");
      return "v" + std::to_string(id - num_inputs);
    };
    for (std::size_t n = 0; n < nodes.size(); ++n) {
      graph::Node gn;
      gn.name = "v" + std::to_string(n);
      gn.op = nodes[n].op;
      for (const int id : nodes[n].operands) gn.inputs.push_back(value_name(id));
      if (nodes[n].op == "concat" && nodes[n].axis != 0) {
        gn.attrs.emplace("axis", Attr::of_int(nodes[n].axis));
      }
      g.nodes.push_back(std::move(gn));
      g.outputs.push_back("v" + std::to_string(n));
    }

    Rng bind_rng(1);
    graph::GraphExecutor executor(g, bind_rng);
    const TensorF x = gen_tensor(rng, {rows, cols});
    const TensorF bias = gen_tensor(rng, {cols});
    nn::QuantEngine engine(nn::QuantEngine::Config{});
    const auto got = executor.run({x, bias}, engine);

    // Oracle: demand-driven recursive evaluation over plain vectors.
    std::vector<std::vector<int>> producers;
    for (const DagNode& n : nodes) producers.push_back(n.operands);
    std::vector<RefVal> inputs(2);
    inputs[0].dims = {rows, cols};
    inputs[0].data.assign(x.data().begin(), x.data().end());
    inputs[1].dims = {cols};
    inputs[1].data.assign(bias.data().begin(), bias.data().end());
    const auto values = ref::recursive_eval<RefVal>(
        producers, inputs,
        [&](std::size_t n, const std::vector<const RefVal*>& args) {
          return eval_ref_node(nodes[n], args);
        });

    for (std::size_t n = 0; n < nodes.size(); ++n) {
      const RefVal& want = values[static_cast<std::size_t>(num_inputs) + n];
      const TensorF& have = got[n];
      if (have.shape().dims() != want.dims) {
        return proptest::fail("node v", n, " shape mismatch vs oracle");
      }
      for (std::int64_t i = 0; i < have.numel(); ++i) {
        if (have.at(i) != want.data[static_cast<std::size_t>(i)]) {
          return proptest::fail("node v", n, " (", nodes[n].op,
                                ") differs from recursive oracle at flat ",
                                i, ": ", have.at(i), " vs ",
                                want.data[static_cast<std::size_t>(i)]);
        }
      }
    }

    // Order invariance: every valid topological order (capped) must
    // produce the same bytes.
    const auto orders = graph::all_topological_orders(g, 24);
    for (const auto& order : orders) {
      const auto reordered = executor.run_with_order({x, bias}, engine, order);
      for (std::size_t n = 0; n < nodes.size(); ++n) {
        auto r = expect_bitwise(reordered[n], got[n],
                                "topological-order invariance, node v" +
                                    std::to_string(n));
        if (r.has_value()) return r;
      }
    }
    return proptest::pass();
  });
}

// ---------------------------------------------------------------------
// Shape rules vs independent closed forms.
// ---------------------------------------------------------------------

TEST(PropGraph, ConvAndPoolShapesMatchPositionCountingOracle) {
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const std::int64_t in_h = rng.uniform_int(1, 4 + size);
    const std::int64_t in_w = rng.uniform_int(1, 4 + size);
    const std::int64_t k = rng.uniform_int(1, 6);
    const std::int64_t s = rng.uniform_int(1, 4);
    const std::int64_t p = rng.uniform_int(0, 3);

    // conv2d.
    {
      graph::Node node;
      node.name = "c";
      node.op = "conv2d";
      node.attrs.emplace("out_channels", Attr::of_int(5));
      node.attrs.emplace("kernel", Attr::of_int(k));
      node.attrs.emplace("stride", Attr::of_int(s));
      node.attrs.emplace("pad", Attr::of_int(p));
      Dims out;
      const std::string err =
          graph::find_op("conv2d")->infer(node, {{3, in_h, in_w}}, out);
      const std::int64_t oh = ref::conv_positions(in_h, k, s, p);
      const std::int64_t ow = ref::conv_positions(in_w, k, s, p);
      if (oh <= 0 || ow <= 0) {
        if (err.empty()) {
          return proptest::fail("conv2d accepted a shape the oracle "
                                "rejects: in=", in_h, "x", in_w, " k=", k,
                                " s=", s, " p=", p);
        }
      } else {
        if (!err.empty()) {
          return proptest::fail("conv2d rejected a valid shape: ", err);
        }
        if (out != Dims{5, oh, ow}) {
          return proptest::fail("conv2d shape ", graph::dims_to_string(out),
                                " vs oracle [5, ", oh, ", ", ow, "]");
        }
      }
    }

    // pool (stride defaults to kernel when the attr is absent).
    {
      const bool explicit_stride = rng.bernoulli(0.5);
      graph::Node node;
      node.name = "p";
      node.op = rng.bernoulli(0.5) ? "maxpool2d" : "avgpool2d";
      node.attrs.emplace("kernel", Attr::of_int(k));
      if (explicit_stride) node.attrs.emplace("stride", Attr::of_int(s));
      Dims out;
      const std::string err =
          graph::find_op(node.op)->infer(node, {{3, in_h, in_w}}, out);
      const std::int64_t eff_s = explicit_stride ? s : k;
      const std::int64_t oh = ref::pool_positions(in_h, k, eff_s);
      const std::int64_t ow = ref::pool_positions(in_w, k, eff_s);
      if (oh <= 0 || ow <= 0) {
        if (err.empty()) {
          return proptest::fail(node.op, " accepted a shape the oracle "
                                "rejects");
        }
      } else if (!err.empty()) {
        return proptest::fail(node.op, " rejected a valid shape: ", err);
      } else if (out != Dims{3, oh, ow}) {
        return proptest::fail(node.op, " shape ",
                              graph::dims_to_string(out), " vs oracle [3, ",
                              oh, ", ", ow, "]");
      }
    }
    return proptest::pass();
  });
}

TEST(PropGraph, BroadcastRuleMatchesLeftPaddedOracle) {
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    (void)size;
    const auto gen_shape = [&rng]() {
      Dims d(static_cast<std::size_t>(rng.uniform_int(1, 4)));
      for (auto& v : d) {
        v = rng.bernoulli(0.4) ? 1 : rng.uniform_int(2, 5);
      }
      return d;
    };
    const Dims a = gen_shape();
    const Dims b = gen_shape();
    Dims got;
    const std::string err = graph::broadcast_dims(a, b, got);
    const Dims want = ref::broadcast_shape(a, b);
    if (want.empty()) {
      if (err.empty()) {
        return proptest::fail("broadcast_dims accepted ",
                              graph::dims_to_string(a), " + ",
                              graph::dims_to_string(b),
                              " which the oracle rejects");
      }
      return proptest::pass();
    }
    if (!err.empty()) {
      return proptest::fail("broadcast_dims rejected ",
                            graph::dims_to_string(a), " + ",
                            graph::dims_to_string(b), ": ", err);
    }
    if (got != want) {
      return proptest::fail("broadcast ", graph::dims_to_string(got),
                            " vs oracle ", graph::dims_to_string(want));
    }
    return proptest::pass();
  });
}

TEST(PropGraph, AttentionHeadSplitMatchesDivisibilityOracle) {
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const std::int64_t tokens = proptest::gen_dim(rng, size);
    const std::int64_t dim = proptest::gen_dim(rng, size);
    const std::int64_t heads = rng.uniform_int(1, 5);
    graph::Node node;
    node.name = "a";
    node.op = "attention";
    node.attrs.emplace("heads", Attr::of_int(heads));
    Dims out;
    const std::string err =
        graph::find_op("attention")->infer(node, {{tokens, dim}}, out);
    if (ref::head_split_ok(dim, heads)) {
      if (!err.empty()) {
        return proptest::fail("attention rejected dim=", dim,
                              " heads=", heads, ": ", err);
      }
      if (out != Dims{tokens, dim}) {
        return proptest::fail("attention shape ",
                              graph::dims_to_string(out));
      }
    } else if (err.empty()) {
      return proptest::fail("attention accepted dim=", dim,
                            " heads=", heads,
                            " which does not split evenly");
    }
    return proptest::pass();
  });
}

}  // namespace
}  // namespace drift
