// Differential suite: the Equation 7 analytical latency model and the
// tandem-queue pipeline closed forms vs. direct independent
// evaluations in src/ref.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/analytical_model.hpp"
#include "proptest/proptest_gtest.hpp"
#include "ref/ref_oracles.hpp"
#include "systolic/stall_model.hpp"

namespace drift {
namespace {

// The oracle library defines its own infeasibility sentinel so src/ref/
// needs no include of core/analytical_model.hpp (oracle-independence
// lint rule); the two constants must never drift apart.
static_assert(ref::kInfeasibleLatency == core::kInfeasibleLatency,
              "ref and core infeasibility sentinels must agree");

core::ArrayDims gen_maybe_degenerate_array(Rng& rng, int size) {
  core::ArrayDims a = proptest::gen_array_dims(rng, size);
  if (rng.bernoulli(0.1)) a.rows = 0;
  if (rng.bernoulli(0.1)) a.cols = 0;
  return a;
}

TEST(PropLatencyModel, WsLatencyMatchesDirectEquationSeven) {
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const core::GemmDims g = proptest::gen_gemm_dims(rng, size);
    const core::ArrayDims a = gen_maybe_degenerate_array(rng, size);
    const int pa = static_cast<int>(rng.uniform_int(1, 8));
    const int pw = static_cast<int>(rng.uniform_int(1, 8));

    const std::int64_t got = core::ws_latency_cycles(g, pa, pw, a);
    const std::int64_t want =
        ref::eq7_cycles(g.M, g.K, g.N, pa, pw, a.rows, a.cols);
    if (got != want) {
      return proptest::fail("ws_latency_cycles(", g.M, "x", g.K, "x", g.N,
                            ", pa=", pa, ", pw=", pw, ", ", a.rows, "x",
                            a.cols, ") = ", got, " vs direct Eq. 7 ", want);
    }

    const std::int64_t reps = core::ws_tile_repetitions(g, pa, pw, a);
    if (g.empty()) {
      // Production counts zero repetitions for empty work even when
      // only M is zero (the ref oracle never sees M).
      if (reps != 0) {
        return proptest::fail("empty work reported ", reps, " repetitions");
      }
    } else if (reps != ref::eq7_repetitions(g.K, g.N, pa, pw, a.rows,
                                            a.cols)) {
      return proptest::fail("ws_tile_repetitions = ", reps,
                            " vs direct Eq. 7 ",
                            ref::eq7_repetitions(g.K, g.N, pa, pw, a.rows,
                                                 a.cols));
    }
    return proptest::pass();
  });
}

TEST(PropLatencyModel, RepetitionsMonotoneInArrayAndPrecision) {
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    core::GemmDims g = proptest::gen_gemm_dims(rng, size);
    g.M = std::max<std::int64_t>(g.M, 1);
    g.K = std::max<std::int64_t>(g.K, 1);
    g.N = std::max<std::int64_t>(g.N, 1);
    const core::ArrayDims a = proptest::gen_array_dims(rng, size);
    const int pa = static_cast<int>(rng.uniform_int(1, 4));
    const int pw = static_cast<int>(rng.uniform_int(1, 4));

    // A bigger array never needs more weight tiles.
    const std::int64_t base = core::ws_tile_repetitions(g, pa, pw, a);
    const std::int64_t more_rows = core::ws_tile_repetitions(
        g, pa, pw, core::ArrayDims{a.rows + 1, a.cols});
    const std::int64_t more_cols = core::ws_tile_repetitions(
        g, pa, pw, core::ArrayDims{a.rows, a.cols + 1});
    if (more_rows > base || more_cols > base) {
      return proptest::fail("growing the array raised repetitions: ", base,
                            " -> rows+1: ", more_rows, ", cols+1: ",
                            more_cols);
    }

    // Doubling a precision at most doubles (and never lowers) the
    // repetition count — the ceil() can only round the doubling down.
    const std::int64_t dbl_pa =
        core::ws_tile_repetitions(g, 2 * pa, pw, a);
    const std::int64_t dbl_pw =
        core::ws_tile_repetitions(g, pa, 2 * pw, a);
    if (dbl_pa < base || dbl_pa > 2 * base || dbl_pw < base ||
        dbl_pw > 2 * base) {
      return proptest::fail("precision doubling broke the [1x, 2x] band: ",
                            base, " -> pa: ", dbl_pa, ", pw: ", dbl_pw);
    }
    return proptest::pass();
  });
}

TEST(PropLatencyModel, PipelineExitMatchesClosedForm) {
  // The O(M*stages) tandem-queue recursion vs. the max-plus
  // lattice-path closed form sum(costs) + (stages-1)*max(costs).
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const std::int64_t rows = rng.uniform_int(0, 4 + 4 * size);
    const std::int64_t stages = rng.uniform_int(1, 3 + 2 * size);
    std::vector<std::int64_t> costs(static_cast<std::size_t>(rows));
    for (auto& k : costs) k = rng.uniform_int(1, 6);

    const std::int64_t got = systolic::pipeline_exit_cycles(costs, stages);
    const std::int64_t want =
        ref::pipeline_exit_closed_form(costs, stages);
    if (got != want) {
      return proptest::fail("pipeline_exit_cycles(", rows, " rows, ",
                            stages, " stages) = ", got,
                            " vs closed form ", want);
    }
    return proptest::pass();
  });
}

TEST(PropLatencyModel, PipelineStallIdentityAndUniformStreamsStallFree) {
  // From the closed form, stall = exit - (sum + (stages-1)*last)
  //                             = (stages-1) * (max(costs) - last).
  // In particular any uniform-cost stream — unit or not — stalls
  // nothing; the cycle_sim used to get the non-unit case wrong.
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const std::int64_t rows = rng.uniform_int(1, 4 + 4 * size);
    const std::int64_t stages = rng.uniform_int(1, 3 + 2 * size);
    std::vector<std::int64_t> costs(static_cast<std::size_t>(rows));
    const bool uniform = rng.bernoulli(0.3);
    const std::int64_t u = rng.uniform_int(1, 6);
    for (auto& k : costs) k = uniform ? u : rng.uniform_int(1, 6);

    const std::int64_t got = systolic::pipeline_stall_cycles(costs, stages);
    const std::int64_t peak = *std::max_element(costs.begin(), costs.end());
    const std::int64_t want = (stages - 1) * (peak - costs.back());
    if (got != want) {
      return proptest::fail("pipeline_stall_cycles = ", got,
                            " vs identity (stages-1)*(max-last) = ", want);
    }
    if (uniform && got != 0) {
      return proptest::fail("uniform cost-", u, " stream reported ", got,
                            " stall cycles");
    }
    return proptest::pass();
  });
}

}  // namespace
}  // namespace drift
