// Differential suite: quantization primitives (Equation 1 and the
// Section 3.1 hi->lo conversion) vs. exact-integer references, plus the
// integer-domain GEMM path (quantize_rows / dequantize_operand /
// int_gemm_nt) vs. naive scalar recomputation at 1, 2, and 8 threads.
#include <gtest/gtest.h>

#include <cmath>

#include "core/quantizer.hpp"
#include "nn/int_gemm.hpp"
#include "proptest/proptest_gtest.hpp"
#include "ref/ref_kernels.hpp"
#include "ref/ref_quant.hpp"
#include "util/thread_pool.hpp"

namespace drift {
namespace {

struct PoolGuard {
  ~PoolGuard() { util::ThreadPool::instance().resize(0); }
};

TEST(PropQuantizer, QuantizeValueMatchesIntegerRoundingRef) {
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const core::QuantParams p =
        proptest::gen_quant_params(rng, core::kInt8);
    for (int i = 0; i < 32 * size; ++i) {
      float x;
      if (rng.bernoulli(0.3)) {
        // Boundary ammunition: exact multiples and half-multiples of Δ
        // probe the round-half-away-from-zero tie behavior.
        const double mult = static_cast<double>(rng.uniform_int(-260, 260));
        x = static_cast<float>((mult / 2.0) * p.delta);
      } else {
        x = static_cast<float>(rng.laplace(20.0 * p.delta));
      }
      const std::int32_t got = core::quantize_value(x, p);
      const std::int32_t want =
          ref::quantize_value(x, p.delta, p.bits.max_level());
      if (got != want) {
        return proptest::fail("quantize_value(", x, ", delta=", p.delta,
                              ") = ", got, ", integer-rounding ref says ",
                              want);
      }
      const float deq = core::dequantize_value(got, p);
      const float deq_ref =
          static_cast<float>(static_cast<double>(want) * p.delta);
      if (deq != deq_ref) {
        return proptest::fail("dequantize_value(", got, ") = ", deq,
                              " vs ref ", deq_ref);
      }
    }
    return proptest::pass();
  });
}

TEST(PropQuantizer, ConvertToLowMatchesShiftRoundSaturateRef) {
  // Exhaustive over the full INT8 code space for every (hc, lc) choice
  // of a random lp — the hardware datapath has no other inputs.
  proptest::gtest_check([](Rng& rng, int) -> proptest::Result {
    const core::Precision lp(static_cast<int>(rng.uniform_int(2, 6)));
    const core::QuantParams p =
        proptest::gen_quant_params(rng, core::kInt8);
    for (const core::ConversionChoice& choice :
         core::enumerate_choices(core::kInt8, lp)) {
      for (std::int32_t q = -127; q <= 127; ++q) {
        const std::int32_t got = core::convert_to_low(q, lp, choice);
        const std::int32_t want =
            ref::convert_to_low(q, lp.max_level(), choice.lc);
        if (got != want) {
          return proptest::fail("convert_to_low(", q, ", lp=", lp.bits(),
                                ", hc=", choice.hc, ", lc=", choice.lc,
                                ") = ", got, ", shift-round-saturate ref ",
                                want);
        }
        const float deq = core::dequantize_low(got, p, choice);
        const float deq_ref = static_cast<float>(
            ref::dequantize_low(want, p.delta, choice.lc));
        if (deq != deq_ref) {
          return proptest::fail("dequantize_low mismatch at q=", q, ": ",
                                deq, " vs ", deq_ref);
        }
      }
    }
    return proptest::pass();
  });
}

TEST(PropQuantizer, RoundTripErrorBoundedByHalfStep) {
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const std::int64_t n = 8 * proptest::gen_dim(rng, size);
    const auto values = proptest::gen_laplace_buffer(rng, n, 0.3);
    const core::QuantParams p =
        core::compute_quant_params(values, core::kInt8);
    for (float x : values) {
      const float rt =
          core::dequantize_value(core::quantize_value(x, p), p);
      // Half-step bound plus a whisker for the float cast.
      if (std::abs(rt - x) > 0.5 * p.delta * (1.0 + 1e-6) + 1e-30) {
        return proptest::fail("round-trip error ", std::abs(rt - x),
                              " exceeds half step ", 0.5 * p.delta,
                              " at x=", x);
      }
    }
    return proptest::pass();
  });
}

TEST(PropQuantizer, QuantizeRowsPipelineMatchesScalarRefAcrossThreads) {
  PoolGuard guard;
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const std::int64_t rows = proptest::gen_dim(rng, size);
    const std::int64_t cols = 4 * proptest::gen_dim(rng, size);
    TensorF x(Shape{rows, cols},
              proptest::gen_laplace_buffer(rng, rows * cols, 0.4));
    const core::SelectorConfig cfg = proptest::gen_selector_config(rng);
    const double budget = rng.uniform(0.01, 0.2);

    util::ThreadPool::instance().resize(1);
    const nn::QuantizedOperand base = nn::quantize_rows(x, cfg, budget);
    for (int threads : {2, 8}) {
      util::ThreadPool::instance().resize(threads);
      const nn::QuantizedOperand op = nn::quantize_rows(x, cfg, budget);
      for (std::int64_t i = 0; i < op.codes.numel(); ++i) {
        if (op.codes.at(i) != base.codes.at(i)) {
          return proptest::fail("quantize_rows codes diverge at flat ", i,
                                " with ", threads, " thread(s)");
        }
      }
      for (std::int64_t r = 0; r < rows; ++r) {
        const auto& d = op.rows[static_cast<std::size_t>(r)];
        const auto& bd = base.rows[static_cast<std::size_t>(r)];
        if (d.use_low != bd.use_low || d.choice.hc != bd.choice.hc ||
            d.choice.lc != bd.choice.lc) {
          return proptest::fail("quantize_rows decision diverges at row ",
                                r, " with ", threads, " thread(s)");
        }
      }
    }

    // dequantize_operand must apply exactly row_scale per element.
    util::ThreadPool::instance().resize(
        static_cast<int>(rng.uniform_int(1, 8)));
    const TensorF deq = nn::dequantize_operand(base);
    for (std::int64_t r = 0; r < rows; ++r) {
      const double scale = base.row_scale(r);
      for (std::int64_t c = 0; c < cols; ++c) {
        const float want = static_cast<float>(base.codes(r, c) * scale);
        if (deq(r, c) != want) {
          return proptest::fail("dequantize_operand(", r, ",", c, ") = ",
                                deq(r, c), " vs scalar ", want);
        }
      }
    }
    return proptest::pass();
  });
}

TEST(PropQuantizer, IntGemmBitExactVsScalarRefAcrossThreads) {
  PoolGuard guard;
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const std::int64_t m = proptest::gen_dim(rng, size);
    const std::int64_t k = 2 * proptest::gen_dim(rng, size);
    const std::int64_t n = proptest::gen_dim(rng, size);
    TensorF a(Shape{m, k}, proptest::gen_laplace_buffer(rng, m * k, 0.4));
    TensorF w(Shape{n, k}, proptest::gen_laplace_buffer(rng, n * k, 0.2));
    const core::SelectorConfig cfg = proptest::gen_selector_config(rng);

    util::ThreadPool::instance().resize(1);
    const nn::QuantizedOperand act = nn::quantize_rows(a, cfg, 0.05);
    const nn::QuantizedOperand wgt = nn::quantize_rows(w, cfg, 0.05);
    std::vector<double> act_scale(static_cast<std::size_t>(m));
    std::vector<double> wgt_scale(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < m; ++i) {
      act_scale[static_cast<std::size_t>(i)] = act.row_scale(i);
    }
    for (std::int64_t j = 0; j < n; ++j) {
      wgt_scale[static_cast<std::size_t>(j)] = wgt.row_scale(j);
    }
    const TensorF want =
        ref::int_gemm_nt(act.codes, wgt.codes, act_scale, wgt_scale);
    for (int threads : {1, 2, 8}) {
      util::ThreadPool::instance().resize(threads);
      const TensorF got = nn::int_gemm_nt(act, wgt);
      for (std::int64_t i = 0; i < got.numel(); ++i) {
        if (got.at(i) != want.at(i)) {
          return proptest::fail("int_gemm_nt differs from scalar ref at ",
                                i, " with ", threads, " thread(s): ",
                                got.at(i), " vs ", want.at(i));
        }
      }
    }
    return proptest::pass();
  });
}

}  // namespace
}  // namespace drift
