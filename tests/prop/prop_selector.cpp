// Differential suite: the Eq. 5/6 precision selector vs. the
// brute-force (hc, lc) clip-enumeration oracle, which re-renders the
// sub-tensor's actual codes under every choice and shares no code with
// src/core/selector.cpp.
#include <gtest/gtest.h>

#include <cmath>
#include <span>

#include "core/quantizer.hpp"
#include "core/selector.hpp"
#include "proptest/proptest_gtest.hpp"
#include "ref/ref_oracles.hpp"
#include "ref/ref_quant.hpp"

namespace drift {
namespace {

struct SelectorCase {
  std::vector<float> enclosing;  ///< the full tensor (Δ calibration)
  std::span<const float> sub;    ///< the sub-tensor under selection
  core::QuantParams params;
  core::SelectorConfig cfg;
  core::SubTensorStats stats;
};

/// The enclosing tensor calibrates Δ (Equation 1); a contiguous slice
/// of it is the sub-tensor the selector sees — sub-tensors whose range
/// is much narrower than the full tensor are exactly the ones the
/// paper's dynamic precision targets.
SelectorCase gen_case(Rng& rng, int size) {
  SelectorCase sc;
  const std::int64_t total = 4 * proptest::gen_dim(rng, size);
  sc.enclosing = proptest::gen_laplace_buffer(rng, total, 0.5);
  const std::int64_t len = rng.uniform_int(1, total);
  const std::int64_t off = rng.uniform_int(0, total - len);
  sc.sub = std::span<const float>(sc.enclosing)
               .subspan(static_cast<std::size_t>(off),
                        static_cast<std::size_t>(len));
  sc.cfg = proptest::gen_selector_config(rng);
  sc.params = core::compute_quant_params(sc.enclosing, sc.cfg.hp);
  sc.stats = ref::stats(sc.sub);
  return sc;
}

TEST(PropSelector, ClipChoiceMatchesBruteForceEquationFive) {
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const SelectorCase sc = gen_case(rng, size);
    const int clip_total = sc.cfg.hp.bits() - sc.cfg.lp.bits();
    const core::PrecisionDecision d =
        core::select_precision(sc.stats, sc.params, sc.cfg);
    const ref::RenderingOracle oracle =
        ref::brute_force_rendering(sc.sub, sc.params, sc.cfg.lp);

    if (oracle.eq5_hc < 0) {
      // No (hc, lc) covers max(|Y|): the selector must refuse low.
      if (d.use_low) {
        return proptest::fail("selector went low but the oracle found no "
                              "feasible clip (max_abs=", sc.stats.max_abs,
                              ")");
      }
      return proptest::pass();
    }
    if (d.choice.hc != oracle.eq5_hc ||
        d.choice.lc != clip_total - oracle.eq5_hc) {
      return proptest::fail("selector chose (hc=", d.choice.hc, ", lc=",
                            d.choice.lc, ") but brute force says hc=",
                            oracle.eq5_hc, " (max_abs=", sc.stats.max_abs,
                            ", delta=", sc.params.delta, ")");
    }
    return proptest::pass();
  });
}

TEST(PropSelector, ChosenRenderingNeverEngagesTheClamp) {
  // Equation 5's guarantee: the selected (hc, lc) re-renders every
  // actual code of the sub-tensor without saturating.
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const SelectorCase sc = gen_case(rng, size);
    const core::PrecisionDecision d =
        core::select_precision(sc.stats, sc.params, sc.cfg);
    if (!d.use_low) return proptest::pass();
    const ref::RenderingOracle oracle =
        ref::brute_force_rendering(sc.sub, sc.params, sc.cfg.lp);
    if (d.choice.hc > oracle.max_hc_no_clip) {
      return proptest::fail("selected hc=", d.choice.hc,
                            " clips actual codes; largest clip-free hc is ",
                            oracle.max_hc_no_clip);
    }
    return proptest::pass();
  });
}

TEST(PropSelector, ZeroDensityThresholdAcceptsIffOracleFeasible) {
  // With δ = 0 Equation 6 always accepts, so the decision reduces to
  // Equation 5 feasibility — which the oracle decides independently.
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    SelectorCase sc = gen_case(rng, size);
    sc.cfg.density_threshold = 0.0;
    const core::PrecisionDecision d =
        core::select_precision(sc.stats, sc.params, sc.cfg);
    const ref::RenderingOracle oracle =
        ref::brute_force_rendering(sc.sub, sc.params, sc.cfg.lp);
    if (d.use_low != (oracle.eq5_hc >= 0)) {
      return proptest::fail("at delta=0 selector said use_low=", d.use_low,
                            " but oracle eq5_hc=", oracle.eq5_hc);
    }
    return proptest::pass();
  });
}

TEST(PropSelector, SelectedErrorWithinBoundedGapOfBruteForceOptimum) {
  // The selector never searches for the error-minimal choice (it fixes
  // hc by Eq. 5), so exact argmin equality would be a false property.
  // What Eq. 5 does guarantee for its clip-free choice is the two-stage
  // rounding bound
  //     worst |x - render(x)| <= Δ/2 + Δ*2^(lc-1) = Δ*(2^lc + 1)/2,
  // and since (2^lc + 1)/2 <= 2^lc for lc >= 0, the gap to the
  // brute-force optimum is at most Δ*2^lc.  Both are asserted.
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const SelectorCase sc = gen_case(rng, size);
    const core::PrecisionDecision d =
        core::select_precision(sc.stats, sc.params, sc.cfg);
    if (!d.use_low) return proptest::pass();

    double worst = 0.0;
    for (float x : sc.sub) {
      const std::int32_t q = core::quantize_value(x, sc.params);
      const std::int32_t q_lp = core::convert_to_low(q, sc.cfg.lp, d.choice);
      const double rendered =
          ref::dequantize_low(q_lp, sc.params.delta, d.choice.lc);
      worst = std::max(worst,
                       std::abs(static_cast<double>(x) - rendered));
    }
    const double step =
        static_cast<double>(std::int64_t{1} << d.choice.lc) * sc.params.delta;
    const double absolute_bound = 0.5 * (step + sc.params.delta);
    const double slack = 1e-9 * (1.0 + std::abs(sc.stats.max_abs));
    if (worst > absolute_bound + slack) {
      return proptest::fail("worst rendering error ", worst,
                            " exceeds the two-stage bound ", absolute_bound,
                            " (lc=", d.choice.lc, ", delta=",
                            sc.params.delta, ")");
    }
    const ref::RenderingOracle oracle =
        ref::brute_force_rendering(sc.sub, sc.params, sc.cfg.lp);
    if (worst > oracle.best_max_error + step + slack) {
      return proptest::fail("worst rendering error ", worst,
                            " is more than Δ*2^lc=", step,
                            " above the brute-force optimum ",
                            oracle.best_max_error);
    }
    return proptest::pass();
  });
}

TEST(PropSelector, AllZeroAndSingleElementEdgeCases) {
  proptest::gtest_check([](Rng& rng, int) -> proptest::Result {
    const core::SelectorConfig cfg = proptest::gen_selector_config(rng);
    const int clip_total = cfg.hp.bits() - cfg.lp.bits();
    const core::QuantParams params =
        proptest::gen_quant_params(rng, cfg.hp);

    // All-zero sub-tensor: exactly representable at any precision, so
    // the selector must take low at the maximal (resolution-preserving)
    // clip — regardless of δ.
    std::vector<float> zeros(static_cast<std::size_t>(
                                 rng.uniform_int(1, 32)),
                             0.0f);
    const core::PrecisionDecision dz =
        core::select_precision(ref::stats(zeros), params, cfg);
    if (!dz.use_low || dz.choice.hc != clip_total || dz.choice.lc != 0) {
      return proptest::fail("all-zero sub-tensor: expected low with hc=",
                            clip_total, ", got use_low=", dz.use_low,
                            " hc=", dz.choice.hc, " lc=", dz.choice.lc);
    }

    // Single-element sub-tensor: the clip choice must still match the
    // brute-force oracle (a single spike is the worst case for the
    // max-only Eq. 5 shortcut).
    const std::vector<float> one{
        static_cast<float>(rng.laplace(60.0 * params.delta))};
    const core::PrecisionDecision d1 =
        core::select_precision(ref::stats(one), params, cfg);
    const ref::RenderingOracle oracle =
        ref::brute_force_rendering(one, params, cfg.lp);
    if (oracle.eq5_hc < 0) {
      if (d1.use_low) {
        return proptest::fail("single element ", one[0],
                              " infeasible for lp yet selector went low");
      }
    } else if (d1.choice.hc != oracle.eq5_hc) {
      return proptest::fail("single element ", one[0], ": selector hc=",
                            d1.choice.hc, " vs oracle ", oracle.eq5_hc);
    }
    return proptest::pass();
  });
}

TEST(PropSelector, PoolingStatsMatchKahanReference) {
  // core::compute_stats accumulates naively; the Kahan-compensated
  // reference bounds its drift.  max(|Y|) must be exact.
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const std::int64_t n = 8 * proptest::gen_dim(rng, size);
    const auto values = proptest::gen_laplace_buffer(rng, n, 0.5);
    const SubTensorView view({drift::Run{0, n}});
    const core::SubTensorStats got =
        core::compute_stats(view, std::span<const float>(values));
    const core::SubTensorStats want = ref::stats(values);
    if (got.max_abs != want.max_abs) {
      return proptest::fail("max_abs mismatch: ", got.max_abs, " vs ",
                            want.max_abs);
    }
    const double tol = 1e-12 * static_cast<double>(n) *
                           (1.0 + want.mean_sq) +
                       1e-300;
    if (std::abs(got.mean_abs - want.mean_abs) > tol ||
        std::abs(got.mean - want.mean) > tol ||
        std::abs(got.mean_sq - want.mean_sq) > tol) {
      return proptest::fail("pooling stats drifted past ", tol,
                            ": mean_abs ", got.mean_abs, " vs ",
                            want.mean_abs);
    }
    return proptest::pass();
  });
}

}  // namespace
}  // namespace drift
