// Differential suite: parallel blocked kernels (src/nn) vs. naive
// scalar references (src/ref), bit-exact at 1, 2, and 8 threads.
//
// The production kernels pin their accumulation policy (double
// accumulators, k-ascending order, fixed chunk decomposition), so any
// thread count must reproduce the single-thread naive result bit for
// bit — these properties are the safety net under every future kernel
// optimization.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/conv2d.hpp"
#include "nn/gemm.hpp"
#include "proptest/proptest_gtest.hpp"
#include "ref/ref_kernels.hpp"
#include "util/thread_pool.hpp"

namespace drift {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

/// Restores the process-wide pool to its default size on scope exit so
/// a failing property cannot leak a pinned thread count into later
/// tests.
struct PoolGuard {
  ~PoolGuard() { util::ThreadPool::instance().resize(0); }
};

TensorF gen_matrix(Rng& rng, std::int64_t rows, std::int64_t cols) {
  TensorF t(Shape{rows, cols},
            proptest::gen_laplace_buffer(rng, rows * cols, 0.5));
  return t;
}

proptest::Result expect_bitwise_equal(const TensorF& got, const TensorF& want,
                                      const char* what, int threads) {
  if (got.shape().numel() != want.shape().numel()) {
    return proptest::fail(what, ": shape mismatch");
  }
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    const float g = got.at(i);
    const float w = want.at(i);
    // Bitwise comparison via exact float equality (no NaNs in play).
    if (g != w) {
      return proptest::fail(what, " differs from scalar reference at flat ",
                            i, " with ", threads, " thread(s): ", g, " vs ",
                            w, " (delta=", std::abs(g - w), ")");
    }
  }
  return proptest::pass();
}

TEST(PropKernels, MatmulBitExactVsNaiveRefAcrossThreads) {
  PoolGuard guard;
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const std::int64_t m = proptest::gen_dim(rng, size);
    const std::int64_t k = proptest::gen_dim(rng, size);
    const std::int64_t n = proptest::gen_dim(rng, size);
    const TensorF a = gen_matrix(rng, m, k);
    const TensorF b = gen_matrix(rng, k, n);
    const TensorF want = ref::matmul(a, b);
    for (int threads : kThreadCounts) {
      util::ThreadPool::instance().resize(threads);
      if (auto r = expect_bitwise_equal(nn::matmul(a, b), want,
                                        "matmul", threads)) {
        return r;
      }
    }
    return proptest::pass();
  });
}

TEST(PropKernels, MatmulNtBitExactVsNaiveRefAcrossThreads) {
  PoolGuard guard;
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const std::int64_t m = proptest::gen_dim(rng, size);
    const std::int64_t k = proptest::gen_dim(rng, size);
    const std::int64_t n = proptest::gen_dim(rng, size);
    const TensorF a = gen_matrix(rng, m, k);
    const TensorF w = gen_matrix(rng, n, k);
    const TensorF want = ref::matmul_nt(a, w);
    for (int threads : kThreadCounts) {
      util::ThreadPool::instance().resize(threads);
      if (auto r = expect_bitwise_equal(nn::matmul_nt(a, w), want,
                                        "matmul_nt", threads)) {
        return r;
      }
    }
    return proptest::pass();
  });
}

TEST(PropKernels, MatmulAndMatmulNtAgreeOnTransposedWeights) {
  // The two GEMM entry points share one accumulation policy, so
  // A*B == A*(B^T)^T bit for bit.
  PoolGuard guard;
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const std::int64_t m = proptest::gen_dim(rng, size);
    const std::int64_t k = proptest::gen_dim(rng, size);
    const std::int64_t n = proptest::gen_dim(rng, size);
    const TensorF a = gen_matrix(rng, m, k);
    const TensorF b = gen_matrix(rng, k, n);
    TensorF bt(Shape{n, k});
    for (std::int64_t i = 0; i < k; ++i) {
      for (std::int64_t j = 0; j < n; ++j) bt(j, i) = b(i, j);
    }
    return expect_bitwise_equal(nn::matmul_nt(a, bt), nn::matmul(a, b),
                                "matmul_nt(A, B^T)", 0);
  });
}

TEST(PropKernels, Conv2dLoweringBitExactVsDirectRefAcrossThreads) {
  PoolGuard guard;
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const std::int64_t c = proptest::gen_dim(rng, std::min(size, 4));
    const std::int64_t h = proptest::gen_dim(rng, size, 2);
    const std::int64_t w = proptest::gen_dim(rng, size, 2);
    const std::int64_t kern = rng.uniform_int(1, std::min<std::int64_t>(
                                                     std::min(h, w), 4));
    const std::int64_t stride = rng.uniform_int(1, 2);
    const std::int64_t pad = rng.uniform_int(0, kern - 1);
    const std::int64_t oc = proptest::gen_dim(rng, std::min(size, 4));

    const TensorF input = TensorF(
        Shape{c, h, w}, proptest::gen_laplace_buffer(rng, c * h * w, 0.5));
    const TensorF weight = gen_matrix(rng, oc, c * kern * kern);
    TensorF bias(Shape{oc});
    for (auto& v : bias.data()) v = static_cast<float>(rng.laplace(0.1));

    const TensorF want =
        ref::conv2d(input, weight, bias, kern, kern, stride, pad);
    const std::int64_t oh = (h + 2 * pad - kern) / stride + 1;
    const std::int64_t ow = (w + 2 * pad - kern) / stride + 1;
    for (int threads : kThreadCounts) {
      util::ThreadPool::instance().resize(threads);
      // The production path: im2col lowering, transposed GEMM, bias,
      // then the [OH*OW, OC] -> [OC, OH, OW] transpose Conv2d applies.
      const TensorF lowered = nn::im2col(input, kern, kern, stride, pad);
      TensorF out2d = nn::matmul_nt(lowered, weight);
      nn::add_bias(out2d, bias);
      TensorF got(Shape{oc, oh, ow});
      for (std::int64_t o = 0; o < oc; ++o) {
        for (std::int64_t p = 0; p < oh * ow; ++p) {
          got.at(o * oh * ow + p) = out2d(p, o);
        }
      }
      if (auto r = expect_bitwise_equal(got, want, "conv2d", threads)) {
        return r;
      }
    }
    return proptest::pass();
  });
}

}  // namespace
}  // namespace drift
