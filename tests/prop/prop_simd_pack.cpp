// Property suite: packed-nibble (INT4) storage round-trips.
//
// The packed format is the byte-level operand the s4 microkernels
// consume in-register; these properties pin the layout — element 2i in
// the low nibble, 2i+1 in the high nibble, odd-row padding nibble zero
// — independently of any backend.
#include <gtest/gtest.h>

#include <vector>

#include "nn/simd/pack.hpp"
#include "proptest/proptest_gtest.hpp"

namespace drift {
namespace {

std::vector<std::int32_t> gen_codes(Rng& rng, std::int64_t n) {
  std::vector<std::int32_t> codes(static_cast<std::size_t>(n));
  for (auto& c : codes) {
    c = static_cast<std::int32_t>(rng.uniform_int(-8, 7));
  }
  return codes;
}

TEST(PropSimdPack, RoundTripRestoresEveryCode) {
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    // Odd lengths must exercise the padding nibble, so draw both
    // parities; length 1 is the smallest odd row.
    const std::int64_t n = proptest::gen_dim(rng, 4 * size);
    const auto codes = gen_codes(rng, n);
    std::vector<std::uint8_t> packed(
        static_cast<std::size_t>(nn::simd::packed_size(n)));
    nn::simd::pack_nibbles(codes, packed);
    std::vector<std::int32_t> back(static_cast<std::size_t>(n));
    nn::simd::unpack_nibbles(packed, back);
    for (std::int64_t i = 0; i < n; ++i) {
      if (back[static_cast<std::size_t>(i)] !=
          codes[static_cast<std::size_t>(i)]) {
        return proptest::fail("round trip mangled element ", i, ": ",
                              codes[static_cast<std::size_t>(i)], " -> ",
                              back[static_cast<std::size_t>(i)]);
      }
    }
    return proptest::pass();
  });
}

TEST(PropSimdPack, LayoutMatchesNibbleArithmetic) {
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const std::int64_t n = proptest::gen_dim(rng, 4 * size);
    const auto codes = gen_codes(rng, n);
    std::vector<std::uint8_t> packed(
        static_cast<std::size_t>(nn::simd::packed_size(n)));
    nn::simd::pack_nibbles(codes, packed);
    for (std::int64_t i = 0; i < n; ++i) {
      const std::uint8_t byte = packed[static_cast<std::size_t>(i / 2)];
      const int nib = (i & 1) ? (byte >> 4) : (byte & 0x0F);
      const std::int32_t want = codes[static_cast<std::size_t>(i)];
      if (((nib ^ 0x08) - 0x08) != want) {
        return proptest::fail("nibble ", i, " encodes ",
                              (nib ^ 0x08) - 0x08, ", expected ", want);
      }
    }
    // The padding nibble of an odd row must be zero: it participates in
    // the s4 dot products and must not perturb them.
    if ((n & 1) != 0 && (packed.back() >> 4) != 0) {
      return proptest::fail("odd-length padding nibble is ",
                            packed.back() >> 4, ", expected 0");
    }
    return proptest::pass();
  });
}

}  // namespace
}  // namespace drift
