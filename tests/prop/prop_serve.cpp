// Differential suite: the serving simulator vs. the queueing oracles.
//
//   1. *Lindley replay, exact.*  With batch size 1 the event loop is a
//      single-server FIFO queue, so every request's wait must equal the
//      src/ref Lindley recurrence replayed over the merged arrival
//      trace — and every request's service must equal a fresh offline
//      accelerator run of that request's own mix (the randomized
//      batch-vs-serial differential).  Integer cycles, no tolerance.
//   2. *M/D/1 long-run mean.*  With canonical (shared) mixes the
//      service time is deterministic; under Poisson arrivals the
//      pooled mean wait over the whole case schedule must match the
//      closed form within a seeded tolerance.
//   3. *Arrival processes.*  Seeded generators replay exactly, Poisson
//      interarrival moments match the exponential closed forms, bursty
//      traffic is overdispersed (CV^2 > 1), diurnal arrivals stay
//      monotone.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "accel/bitfusion.hpp"
#include "accel/drq_accel.hpp"
#include "accel/drift_accel.hpp"
#include "proptest/proptest_gtest.hpp"
#include "ref/ref_queue.hpp"
#include "serve/simulator.hpp"

namespace drift {
namespace {

/// One-layer micro workload: keeps a per-batch accelerator run cheap so
/// a case can serve dozens of requests.
nn::WorkloadSpec micro_workload(Rng& rng, int size) {
  nn::WorkloadSpec spec;
  spec.model = "micro";
  spec.family = nn::ModelFamily::kBert;
  spec.act_profile = nn::bert_profile();
  spec.weight_profile = nn::weight_profile();
  const std::int64_t m = proptest::gen_dim(rng, size, 2);
  const std::int64_t k = proptest::gen_dim(rng, size, 2);
  const std::int64_t n = proptest::gen_dim(rng, size, 2);
  spec.layers = {{"fc", nn::LayerKind::kFc, {m, k, n}, 1, 1}};
  return spec;
}

serve::ExecConfig micro_exec(Rng& rng) {
  serve::ExecConfig exec;
  exec.hw.array = core::ArrayDims{8, 8};
  const double pick = rng.uniform();
  exec.algo = pick < 0.5 ? nn::MixAlgorithm::kDrift
              : pick < 0.75 ? nn::MixAlgorithm::kStaticInt8
                            : nn::MixAlgorithm::kDrq;
  return exec;
}

/// Fresh offline accelerator of the serving config — a new model
/// instance, so the serving executor's internal state cannot leak into
/// the reference run.
std::unique_ptr<accel::Accelerator> offline_model(
    const serve::ExecConfig& exec) {
  switch (exec.algo) {
    case nn::MixAlgorithm::kStaticInt8:
      return std::make_unique<accel::BitFusionModel>(exec.hw);
    case nn::MixAlgorithm::kDrq:
      return std::make_unique<accel::DrqAccelModel>(exec.hw);
    case nn::MixAlgorithm::kDrift:
      return std::make_unique<accel::DriftAccelModel>(exec.hw,
                                                      exec.drift_policy);
  }
  return nullptr;
}

TEST(PropServe, BatchOneWaitsMatchLindleyAndServicesMatchOffline) {
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    serve::ServeConfig config;
    config.exec = micro_exec(rng);
    config.max_batch = 1;
    const int num_tenants = rng.bernoulli(0.4) ? 2 : 1;
    for (int t = 0; t < num_tenants; ++t) {
      serve::TenantSpec tenant;
      tenant.name = t == 0 ? "a" : "b";
      tenant.workload = micro_workload(rng, size);
      tenant.seed = rng.uniform_int(1, 1 << 20);
      tenant.num_requests = 2 + rng.uniform_int(0, 2 * size);
      tenant.unique_mix_per_request = rng.bernoulli(0.7);
      tenant.arrival.kind = serve::ArrivalKind::kPoisson;
      tenant.arrival.mean_interarrival_cycles =
          std::exp(rng.uniform(std::log(16.0), std::log(4096.0)));
      config.tenants.push_back(tenant);
    }

    serve::Simulator sim(config);
    const serve::ServeResult result = sim.run();

    // Offline service of every request, through a fresh model.
    const auto model = offline_model(config.exec);
    std::vector<std::int64_t> arrivals, services;
    for (const serve::RequestRecord& rec : result.requests) {
      const accel::RunResult offline =
          model->run(sim.executor().tenant_spec(rec.tenant),
                     sim.executor().request_mixes(rec.tenant, rec.local));
      if (offline.cycles != rec.service()) {
        return proptest::fail("request id=", rec.id, " tenant=", rec.tenant,
                              " local=", rec.local, " served in ",
                              rec.service(), " cycles; offline run of the "
                              "same mix takes ", offline.cycles);
      }
      arrivals.push_back(rec.arrival);
      services.push_back(rec.service());
    }

    // Lindley replay over the merged trace (records are in admission
    // order, which is sorted by arrival with deterministic tie-breaks).
    const auto waits = ref::lindley_waits(arrivals, services);
    const auto completions = ref::lindley_completions(arrivals, services);
    for (std::size_t i = 0; i < waits.size(); ++i) {
      const serve::RequestRecord& rec = result.requests[i];
      if (rec.wait() != waits[i] || rec.completion != completions[i]) {
        return proptest::fail("request id=", rec.id, ": simulator wait=",
                              rec.wait(), " completion=", rec.completion,
                              "; Lindley oracle wait=", waits[i],
                              " completion=", completions[i]);
      }
    }
    return proptest::pass();
  });
}

TEST(PropServe, LongRunMeanWaitMatchesMD1) {
  // Deterministic service (shared canonical mix) + Poisson arrivals is
  // an M/D/1 queue.  A single case's mean wait is noisy, so the
  // schedule's cases pool into one weighted ratio against the closed
  // form; the bound holds for any base seed with wide margin (checked
  // in CI at a second fixed seed).
  const proptest::Config cfg = proptest::config_from_env();
  double observed_sum = 0.0;   // sum of per-request waits
  double expected_sum = 0.0;   // sum of per-request Wq predictions
  for (int i = 0; i < cfg.iters; ++i) {
    Rng rng(proptest::case_seed(cfg.seed, i));
    serve::ServeConfig config;
    config.exec.hw.array = core::ArrayDims{8, 8};
    config.exec.algo = nn::MixAlgorithm::kDrift;
    config.max_batch = 1;
    serve::TenantSpec tenant;
    tenant.workload = micro_workload(rng, 6);
    tenant.seed = rng.uniform_int(1, 1 << 20);
    tenant.num_requests = 160;
    tenant.unique_mix_per_request = false;  // constant service: the D
    config.tenants.push_back(tenant);

    // Calibrate the arrival rate to a stable utilization.
    serve::Simulator probe(config);
    const double service =
        static_cast<double>(probe.executor().execute_canonical(0).cycles);
    ASSERT_GT(service, 0.0);
    const double load = rng.uniform(0.30, 0.65);
    config.tenants[0].arrival.mean_interarrival_cycles = service / load;

    serve::Simulator sim(config);
    const serve::ServeResult result = sim.run();
    const double wq =
        ref::md1_mean_wait(load / service, service);
    ASSERT_GE(wq, 0.0);
    for (const serve::RequestRecord& rec : result.requests) {
      observed_sum += static_cast<double>(rec.wait());
    }
    expected_sum += wq * static_cast<double>(tenant.num_requests);
  }
  ASSERT_GT(expected_sum, 0.0);
  const double ratio = observed_sum / expected_sum;
  // ~20k pooled waits at the default schedule: the estimator
  // concentrates well inside [0.75, 1.30]; the band also covers the
  // +-1-cycle arrival rounding.
  EXPECT_GT(ratio, 0.75) << "pooled mean wait " << ratio
                         << "x the M/D/1 prediction";
  EXPECT_LT(ratio, 1.30) << "pooled mean wait " << ratio
                         << "x the M/D/1 prediction";
}

TEST(PropServe, ArrivalGeneratorsReplayExactly) {
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    serve::ArrivalConfig config;
    const double kind_pick = rng.uniform();
    config.kind = kind_pick < 0.34   ? serve::ArrivalKind::kPoisson
                  : kind_pick < 0.67 ? serve::ArrivalKind::kBursty
                                     : serve::ArrivalKind::kDiurnal;
    config.mean_interarrival_cycles =
        std::exp(rng.uniform(std::log(4.0), std::log(65536.0)));
    config.diurnal_period_cycles = config.mean_interarrival_cycles * 64.0;
    const std::int64_t count = 1 + rng.uniform_int(0, 16 * size);
    const std::uint64_t seed = rng.uniform_int(0, 1 << 30);

    Rng a(seed), b(seed);
    const auto cycles_a = serve::arrival_cycles(config, a, count);
    const auto cycles_b = serve::arrival_cycles(config, b, count);
    if (cycles_a != cycles_b) {
      return proptest::fail(to_string(config.kind),
                            " trace is not replay-stable at seed ", seed);
    }
    if (!std::is_sorted(cycles_a.begin(), cycles_a.end())) {
      return proptest::fail(to_string(config.kind),
                            " arrivals are not monotone");
    }
    if (static_cast<std::int64_t>(cycles_a.size()) != count) {
      return proptest::fail("expected ", count, " arrivals, got ",
                            cycles_a.size());
    }
    return proptest::pass();
  });
}

TEST(PropServe, PoissonInterarrivalMomentsMatchClosedForm) {
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    (void)size;
    serve::ArrivalConfig config;
    const double mean = std::exp(rng.uniform(std::log(8.0), std::log(8192.0)));
    config.mean_interarrival_cycles = mean;
    const std::int64_t n = 512;
    Rng gen(rng.uniform_int(0, 1 << 30));
    const auto gaps = serve::interarrival_gaps(config, gen, n);

    double sum = 0.0;
    for (double g : gaps) sum += g;
    const double sample_mean = sum / static_cast<double>(n);
    double var = 0.0;
    for (double g : gaps) var += (g - sample_mean) * (g - sample_mean);
    var /= static_cast<double>(n - 1);

    // Exponential closed forms: E = mean, Var = mean^2.  Bounds sized
    // ~6 sigma of the estimators at n = 512 (sd(mean) = mean/sqrt(n),
    // sd(var) ~ mean^2 * sqrt(8/n)).
    if (std::abs(sample_mean - mean) > 0.30 * mean) {
      return proptest::fail("Poisson sample mean ", sample_mean,
                            " outside 30% of ", mean);
    }
    if (var < 0.30 * mean * mean || var > 2.20 * mean * mean) {
      return proptest::fail("Poisson sample variance ", var,
                            " outside [0.3, 2.2] x mean^2 = ", mean * mean);
    }
    return proptest::pass();
  });
}

TEST(PropServe, BurstyTrafficIsOverdispersed) {
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    (void)size;
    serve::ArrivalConfig config;
    config.kind = serve::ArrivalKind::kBursty;
    config.mean_interarrival_cycles =
        std::exp(rng.uniform(std::log(16.0), std::log(4096.0)));
    // Strongly bimodal service rates so CV^2 (~1.9 analytically at
    // these settings) clears the threshold at n = 1024 for any seed.
    config.burst_rate_multiplier = 8.0;
    config.burst_enter_prob = 0.2;
    config.burst_exit_prob = 0.3;
    const std::int64_t n = 1024;
    Rng gen(rng.uniform_int(0, 1 << 30));
    const auto gaps = serve::interarrival_gaps(config, gen, n);

    double sum = 0.0;
    for (double g : gaps) sum += g;
    const double mean = sum / static_cast<double>(n);
    double var = 0.0;
    for (double g : gaps) var += (g - mean) * (g - mean);
    var /= static_cast<double>(n - 1);
    const double cv2 = var / (mean * mean);
    if (cv2 < 1.15) {
      return proptest::fail("bursty CV^2 = ", cv2,
                            "; MMPP interarrivals must be overdispersed "
                            "(Poisson has CV^2 = 1)");
    }
    return proptest::pass();
  });
}

}  // namespace
}  // namespace drift
