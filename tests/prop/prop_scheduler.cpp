// Differential suite: the Equation 8 schedulers vs. the independent
// exhaustive (r, c) enumeration oracle in src/ref.
//
// The greedy scheduler is the component the paper actually deploys
// on-line, so its suite runs at least 200 randomized LayerWork mixes
// regardless of the configured iteration count (unless the run
// explicitly pins DRIFT_PROPTEST_ITERS, e.g. for a failure replay).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "core/scheduler.hpp"
#include "proptest/proptest_gtest.hpp"
#include "ref/ref_oracles.hpp"

namespace drift {
namespace {

/// Greedy is coordinate descent (alternating 1-D sweeps), so it can
/// settle in a joint-move local optimum where improving the makespan
/// needs r and c to move together.  Scanning 500k randomized LayerWork
/// mixes against the exhaustive oracle, the worst observed gap is
/// 1.317x (always on coarse arrays where one slice is a large fraction
/// of an axis; the paper-scale 24x33 array stays within ~1.22x).  The
/// bound below is a regression tripwire over that corpus, not a proof.
constexpr double kGreedyGapBound = 1.50;

proptest::Config at_least_200_cases() {
  proptest::Config cfg = proptest::config_from_env();
  if (std::getenv("DRIFT_PROPTEST_ITERS") == nullptr) {
    cfg.iters = std::max(cfg.iters, 200);
  }
  return cfg;
}

/// An array large enough for schedule_greedy's feasibility band: an
/// axis shared by two non-empty classes needs at least two slices.
core::ArrayDims gen_feasible_array(Rng& rng, int size,
                                   const core::LayerWork& w) {
  const std::int64_t row_lo = (w.m_high > 0 && w.m_low > 0) ? 2 : 1;
  const std::int64_t col_lo = (w.n_high > 0 && w.n_low > 0) ? 2 : 1;
  return core::ArrayDims{proptest::gen_dim(rng, size, row_lo),
                         proptest::gen_dim(rng, size, col_lo)};
}

TEST(PropScheduler, ExhaustiveMatchesIndependentOracle) {
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const core::LayerWork w = proptest::gen_layer_work(rng, size);
    const core::ArrayDims total = proptest::gen_array_dims(rng, size);
    const core::SplitDecision got = core::schedule_exhaustive(w, total);
    const ref::SplitOracle want = ref::exhaustive_split(w, total);
    if (got.makespan != want.best_makespan) {
      return proptest::fail("schedule_exhaustive makespan ", got.makespan,
                            " vs independent oracle ", want.best_makespan,
                            " on ", total.rows, "x", total.cols);
    }
    // The reported split must actually achieve the reported makespan.
    const auto lat = core::quadrant_latencies(w, total, got.r, got.c);
    const std::int64_t peak = *std::max_element(lat.begin(), lat.end());
    if (peak != got.makespan) {
      return proptest::fail("decision (r=", got.r, ", c=", got.c,
                            ") evaluates to ", peak, ", not the reported ",
                            got.makespan);
    }
    return proptest::pass();
  });
}

TEST(PropScheduler, GreedyNeverBeatsOracleAndStaysWithinGap) {
  proptest::gtest_check(
      [](Rng& rng, int size) -> proptest::Result {
        const core::LayerWork w = proptest::gen_layer_work(rng, size);
        const core::ArrayDims total = gen_feasible_array(rng, size, w);
        const core::SplitDecision greedy = core::schedule_greedy(w, total);
        const ref::SplitOracle oracle = ref::exhaustive_split(w, total);

        if (greedy.makespan < oracle.best_makespan) {
          return proptest::fail("greedy makespan ", greedy.makespan,
                                " beats the exhaustive oracle ",
                                oracle.best_makespan,
                                " — one of the two is wrong");
        }
        if (greedy.makespan >= core::kInfeasibleLatency) {
          return proptest::fail("greedy returned an infeasible split on a "
                                "feasible array ", total.rows, "x",
                                total.cols);
        }
        if (oracle.best_makespan == 0) {
          if (greedy.makespan != 0) {
            return proptest::fail("zero-work layer: greedy reports ",
                                  greedy.makespan, " cycles");
          }
          return proptest::pass();
        }
        const double ratio = static_cast<double>(greedy.makespan) /
                             static_cast<double>(oracle.best_makespan);
        if (ratio > kGreedyGapBound) {
          return proptest::fail(
              "greedy gap ", ratio, "x exceeds the documented bound ",
              kGreedyGapBound, "x (greedy=", greedy.makespan, " at r=",
              greedy.r, ",c=", greedy.c, "; oracle=", oracle.best_makespan,
              " at r=", oracle.best_r, ",c=", oracle.best_c, "; array ",
              total.rows, "x", total.cols, ")");
        }
        return proptest::pass();
      },
      at_least_200_cases());
}

TEST(PropScheduler, QuadrantLatenciesMatchEquationSevenRef) {
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const core::LayerWork w = proptest::gen_layer_work(rng, size);
    const core::ArrayDims total = proptest::gen_array_dims(rng, size);
    const std::int64_t r = rng.uniform_int(0, total.rows);
    const std::int64_t c = rng.uniform_int(0, total.cols);
    const auto lat = core::quadrant_latencies(w, total, r, c);
    const std::int64_t want[4] = {
        ref::eq7_cycles(w.m_high, w.k, w.n_high, w.pa_high, w.pw_high, r, c),
        ref::eq7_cycles(w.m_high, w.k, w.n_low, w.pa_high, w.pw_low, r,
                        total.cols - c),
        ref::eq7_cycles(w.m_low, w.k, w.n_high, w.pa_low, w.pw_high,
                        total.rows - r, c),
        ref::eq7_cycles(w.m_low, w.k, w.n_low, w.pa_low, w.pw_low,
                        total.rows - r, total.cols - c),
    };
    for (int q = 0; q < 4; ++q) {
      if (lat[static_cast<std::size_t>(q)] != want[q]) {
        return proptest::fail("quadrant ", q, " latency ",
                              lat[static_cast<std::size_t>(q)],
                              " vs direct Eq. 7 evaluation ", want[q],
                              " at r=", r, ", c=", c);
      }
    }
    return proptest::pass();
  });
}

TEST(PropScheduler, FixedQuartersFeasibleAndNeverBeatsOracle) {
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const core::LayerWork w = proptest::gen_layer_work(rng, size);
    const core::ArrayDims total = gen_feasible_array(rng, size, w);
    const core::SplitDecision fixed =
        core::schedule_fixed_quarters(w, total);
    if (fixed.makespan >= core::kInfeasibleLatency) {
      return proptest::fail("fixed-quarters split infeasible on ",
                            total.rows, "x", total.cols);
    }
    const ref::SplitOracle oracle = ref::exhaustive_split(w, total);
    if (fixed.makespan < oracle.best_makespan) {
      return proptest::fail("ablation baseline ", fixed.makespan,
                            " beats the exhaustive oracle ",
                            oracle.best_makespan);
    }
    return proptest::pass();
  });
}

}  // namespace
}  // namespace drift
