// Property suite: the dispatched reduce_stats kernel.
//
// Two layers of guarantee: (1) every vector backend reproduces the
// scalar backend's canonical 4-lane accumulation schedule bit for bit
// (exact double equality, including the float sums); (2) the selector's
// compute_stats built on top of it stays within the documented drift of
// the Kahan-compensated reference, with max(|Y|) exact.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/selector.hpp"
#include "nn/simd/kernel_dispatch.hpp"
#include "proptest/proptest_gtest.hpp"
#include "ref/ref_quant.hpp"
#include "tensor/subtensor.hpp"

namespace drift {
namespace {

/// Restores the force-scalar override on scope exit.
struct ForceScalarGuard {
  bool prev = nn::simd::force_scalar();
  ~ForceScalarGuard() { nn::simd::set_force_scalar(prev); }
};

TEST(PropSimdStats, ReduceStatsBitwiseEqualAcrossBackends) {
  ForceScalarGuard guard;
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    // Lengths off the 4-lane grid exercise the vector tail path.
    const std::int64_t n = proptest::gen_dim(rng, 8 * size);
    const auto values = proptest::gen_laplace_buffer(rng, n, 0.5);

    nn::simd::set_force_scalar(true);
    const nn::simd::RawStats want =
        nn::simd::active().reduce_stats(values.data(), n);
    nn::simd::set_force_scalar(false);
    const nn::simd::RawStats got =
        nn::simd::active().reduce_stats(values.data(), n);

    // Exact double equality: the 4-lane schedule is pinned, so even
    // the float sums must agree bitwise (no NaNs in play).
    if (got.max_abs != want.max_abs || got.sum_abs != want.sum_abs ||
        got.sum != want.sum || got.sum_sq != want.sum_sq) {
      return proptest::fail(
          "reduce_stats diverged between backends: max_abs ", got.max_abs,
          " vs ", want.max_abs, ", sum ", got.sum, " vs ", want.sum,
          ", sum_abs ", got.sum_abs, " vs ", want.sum_abs, ", sum_sq ",
          got.sum_sq, " vs ", want.sum_sq);
    }
    return proptest::pass();
  });
}

TEST(PropSimdStats, MultiRunComputeStatsMatchesKahanReference) {
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const std::int64_t total = 8 * proptest::gen_dim(rng, size, 4);
    const auto buffer = proptest::gen_laplace_buffer(rng, total, 0.5);

    // A view of several disjoint runs: the per-run reductions combine
    // sequentially in view order.
    std::vector<::drift::Run> runs;
    std::int64_t pos = 0;
    while (pos < total) {
      const std::int64_t len = rng.uniform_int(1, total - pos);
      if (rng.bernoulli(0.7)) runs.push_back(::drift::Run{pos, len});
      pos += len;
    }
    if (runs.empty()) runs.push_back(::drift::Run{0, total});
    const SubTensorView view(runs);

    const core::SubTensorStats got =
        core::compute_stats(view, std::span<const float>(buffer));
    std::vector<float> gathered(static_cast<std::size_t>(view.size()));
    view.gather<float>(buffer, gathered);
    const core::SubTensorStats want = ref::stats(gathered);

    if (got.max_abs != want.max_abs) {
      return proptest::fail("max_abs must be exact: ", got.max_abs, " vs ",
                            want.max_abs);
    }
    const double n = static_cast<double>(view.size());
    const double tol = 1e-12 * n * (1.0 + want.mean_sq) + 1e-300;
    if (std::abs(got.mean_abs - want.mean_abs) > tol ||
        std::abs(got.mean - want.mean) > tol ||
        std::abs(got.mean_sq - want.mean_sq) > tol) {
      return proptest::fail("pooling stats drifted past ", tol,
                            " over ", runs.size(), " runs: mean ",
                            got.mean, " vs ", want.mean);
    }
    return proptest::pass();
  });
}

}  // namespace
}  // namespace drift
