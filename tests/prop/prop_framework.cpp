// Self-tests of the property-test framework: seed schedule, size ramp,
// shrinking, and repro-line formatting.  Everything the differential
// suites rely on for reproducibility is pinned here.
#include <gtest/gtest.h>

#include <string>

#include "proptest/proptest.hpp"
#include "util/rng.hpp"

namespace drift {
namespace {

TEST(PropFramework, CaseZeroUsesTheBaseSeedItself) {
  // This is what makes DRIFT_PROPTEST_SEED=<failing> ITERS=1 an exact
  // replay of a reported failure.
  EXPECT_EQ(proptest::case_seed(0xDEADBEEFull, 0), 0xDEADBEEFull);
  EXPECT_NE(proptest::case_seed(0xDEADBEEFull, 1), 0xDEADBEEFull);
  EXPECT_NE(proptest::case_seed(0xDEADBEEFull, 1),
            proptest::case_seed(0xDEADBEEFull, 2));
}

TEST(PropFramework, SizeRampsFromOneToMax) {
  proptest::Config cfg;
  cfg.iters = 10;
  cfg.max_size = 16;
  EXPECT_EQ(proptest::size_for(cfg, 0), 1);
  EXPECT_EQ(proptest::size_for(cfg, cfg.iters - 1), cfg.max_size);
  for (int i = 1; i < cfg.iters; ++i) {
    EXPECT_GE(proptest::size_for(cfg, i), proptest::size_for(cfg, i - 1));
  }
  cfg.forced_size = 7;
  EXPECT_EQ(proptest::size_for(cfg, 0), 7);
  EXPECT_EQ(proptest::size_for(cfg, cfg.iters - 1), 7);
}

TEST(PropFramework, PassingPropertyRunsEveryCase) {
  proptest::Config cfg;
  cfg.iters = 37;
  const auto rep = proptest::run_property(
      "always-pass", [](Rng&, int) { return proptest::pass(); }, cfg);
  EXPECT_TRUE(rep.passed);
  EXPECT_EQ(rep.cases_run, 37);
  EXPECT_TRUE(rep.repro.empty());
}

TEST(PropFramework, FailureReportsSeedAndReproLine) {
  proptest::Config cfg;
  cfg.iters = 8;
  cfg.seed = 0xABCDull;
  const auto rep = proptest::run_property(
      "always-fail",
      [](Rng&, int) { return proptest::fail("broken at size"); }, cfg);
  ASSERT_FALSE(rep.passed);
  // First case fails, so the failing seed is the base seed itself.
  EXPECT_EQ(rep.failing_seed, 0xABCDull);
  EXPECT_EQ(rep.message, "broken at size");
  EXPECT_NE(rep.repro.find("DRIFT_PROPTEST_SEED=43981"),
            std::string::npos);
  EXPECT_NE(rep.repro.find("DRIFT_PROPTEST_ITERS=1"), std::string::npos);
  EXPECT_NE(rep.repro.find("always-fail"), std::string::npos);
}

TEST(PropFramework, ShrinkingFindsTheSmallestFailingSize) {
  proptest::Config cfg;
  cfg.iters = 16;
  cfg.max_size = 16;
  // Fails at every size >= 3.  With a 1..16 ramp over 16 cases the
  // first failure is already the minimal size 3, and the shrink probes
  // (1, 2) both pass, so the report must keep 3.
  const auto rep = proptest::run_property(
      "fail-above-3",
      [](Rng&, int size) {
        return size >= 3 ? proptest::fail("too big") : proptest::pass();
      },
      cfg);
  ASSERT_FALSE(rep.passed);
  EXPECT_EQ(rep.failing_size, 3);

  // A size-independent failure shrinks all the way to size 1.
  const auto rep1 = proptest::run_property(
      "fail-anywhere", [](Rng&, int) { return proptest::fail("always"); },
      cfg);
  ASSERT_FALSE(rep1.passed);
  EXPECT_EQ(rep1.failing_size, 1);
}

TEST(PropFramework, CaseStreamsAreDeterministic) {
  proptest::Config cfg;
  cfg.iters = 12;
  std::vector<std::uint64_t> first, second;
  const auto record = [](std::vector<std::uint64_t>& sink) {
    return [&sink](Rng& rng, int) {
      sink.push_back(static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30)));
      return proptest::pass();
    };
  };
  proptest::run_property("record-a", record(first), cfg);
  proptest::run_property("record-b", record(second), cfg);
  EXPECT_EQ(first, second);

  cfg.seed ^= 0x1234ull;
  std::vector<std::uint64_t> third;
  proptest::run_property("record-c", record(third), cfg);
  EXPECT_NE(first, third);
}

TEST(PropFramework, GeneratorsRespectDegenerateBiases) {
  // Over a few hundred draws the edge biases must actually fire: a
  // dimension of exactly `lo`, an all-zero buffer, and a constant one.
  Rng rng(0x5EEDull);
  bool saw_lo = false, saw_zero = false, saw_const = false;
  for (int i = 0; i < 400; ++i) {
    if (proptest::gen_dim(rng, 8) == 1) saw_lo = true;
    const auto buf = proptest::gen_laplace_buffer(rng, 16, 0.5);
    bool all_zero = true, all_same = true;
    for (float v : buf) {
      all_zero &= (v == 0.0f);
      all_same &= (v == buf[0]);
    }
    if (all_zero) saw_zero = true;
    if (all_same && !all_zero) saw_const = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_zero);
  EXPECT_TRUE(saw_const);
}

}  // namespace
}  // namespace drift
