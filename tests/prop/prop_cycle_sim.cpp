// Differential suite: the register-level cycle simulation vs. the
// Equation 7 analytical model and the tandem-queue closed forms.
//
// The paper cross-verifies its cycle-accurate simulator against the RTL
// and the analytical model; this suite is that cross-validation for the
// reproduction.  The agreement is *exact* (no tolerance): with unit-cost
// rows the simulated tiling reproduces reps = ceil(K/R) * ceil(N/C),
// which is Eq. 7's repetition factor at pa=4, pw=16 (one activation-bit
// tile per BG row slice, one weight-bit tile per BG column slice).
#include <gtest/gtest.h>

#include <vector>

#include "core/analytical_model.hpp"
#include "proptest/proptest_gtest.hpp"
#include "ref/ref_oracles.hpp"
#include "systolic/cycle_sim.hpp"
#include "systolic/stall_model.hpp"

namespace drift {
namespace {

TensorI32 gen_codes(Rng& rng, std::int64_t rows, std::int64_t cols) {
  TensorI32 t(Shape{rows, cols}, 0);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t.at(i) = static_cast<std::int32_t>(rng.uniform_int(-15, 15));
  }
  return t;
}

TEST(PropCycleSim, GemmCyclesMatchAnalyticalModelExactly) {
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const std::int64_t M = proptest::gen_dim(rng, size);
    const std::int64_t K = proptest::gen_dim(rng, size);
    const std::int64_t N = proptest::gen_dim(rng, size);
    const core::ArrayDims array = proptest::gen_array_dims(rng, size);
    const TensorI32 a = gen_codes(rng, M, K);
    const TensorI32 w = gen_codes(rng, K, N);

    const systolic::SimResult sim = systolic::simulate_gemm(a, w, array);
    const std::int64_t want =
        core::ws_latency_cycles(core::GemmDims{M, K, N}, 4, 16, array);
    if (sim.cycles != want) {
      return proptest::fail("simulate_gemm(", M, "x", K, "x", N, " on ",
                            array.rows, "x", array.cols, ") took ",
                            sim.cycles, " cycles; Eq. 7 at pa=4, pw=16 "
                            "predicts ", want);
    }
    if (sim.stall_cycles != 0) {
      return proptest::fail("uniform-precision GEMM reported ",
                            sim.stall_cycles, " stall cycles");
    }
    return proptest::pass();
  });
}

TEST(PropCycleSim, GemmOutputMatchesIntegerMatmulRef) {
  // The dataflow wiring must compute the actual GEMM, not just count
  // cycles — compare against a direct int64-accumulated matmul.
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const std::int64_t M = proptest::gen_dim(rng, size);
    const std::int64_t K = proptest::gen_dim(rng, size);
    const std::int64_t N = proptest::gen_dim(rng, size);
    const core::ArrayDims array = proptest::gen_array_dims(rng, size);
    const TensorI32 a = gen_codes(rng, M, K);
    const TensorI32 w = gen_codes(rng, K, N);

    const systolic::SimResult sim = systolic::simulate_gemm(a, w, array);
    for (std::int64_t m = 0; m < M; ++m) {
      for (std::int64_t n = 0; n < N; ++n) {
        std::int64_t acc = 0;
        for (std::int64_t k = 0; k < K; ++k) {
          acc += static_cast<std::int64_t>(a(m, k)) *
                 static_cast<std::int64_t>(w(k, n));
        }
        if (sim.output(m, n) != static_cast<std::int32_t>(acc)) {
          return proptest::fail("simulated output(", m, ",", n, ") = ",
                                sim.output(m, n), " vs direct matmul ",
                                acc);
        }
      }
    }
    return proptest::pass();
  });
}

TEST(PropCycleSim, TileCyclesMatchPreloadPlusPipelineClosedForm) {
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const std::int64_t M = proptest::gen_dim(rng, size);
    const std::int64_t R = proptest::gen_dim(rng, size);
    const std::int64_t C = proptest::gen_dim(rng, size);
    const TensorI32 a = gen_codes(rng, M, R);
    const TensorI32 w = gen_codes(rng, R, C);
    std::vector<std::int64_t> costs(static_cast<std::size_t>(M));
    for (auto& k : costs) k = rng.uniform_int(1, 4);

    const systolic::SimResult sim = systolic::simulate_tile(a, w, costs);
    const std::int64_t stages = R + C - 1;
    const std::int64_t want =
        R + ref::pipeline_exit_closed_form(costs, stages);
    if (sim.cycles != want) {
      return proptest::fail("simulate_tile took ", sim.cycles,
                            " cycles; preload + closed form predicts ",
                            want);
    }
    // Stall accounting must agree with the stall model's bound — this
    // is the regression for the old `stages - last` accounting slip,
    // which mis-reported uniform non-unit streams as stalled.
    const std::int64_t stall_want =
        systolic::pipeline_stall_cycles(costs, stages);
    if (sim.stall_cycles != stall_want) {
      return proptest::fail("simulate_tile stall_cycles = ",
                            sim.stall_cycles, " vs stall model ",
                            stall_want);
    }
    return proptest::pass();
  });
}

TEST(PropCycleSim, UniformNonUnitCostTilesAreStallFree) {
  // Dedicated regression: every row at the same (possibly non-unit)
  // cost throttles nothing, so stall_cycles must be exactly zero.
  proptest::gtest_check([](Rng& rng, int size) -> proptest::Result {
    const std::int64_t M = proptest::gen_dim(rng, size);
    const std::int64_t R = proptest::gen_dim(rng, size);
    const std::int64_t C = proptest::gen_dim(rng, size);
    const TensorI32 a = gen_codes(rng, M, R);
    const TensorI32 w = gen_codes(rng, R, C);
    const std::int64_t k = rng.uniform_int(2, 4);
    const std::vector<std::int64_t> costs(static_cast<std::size_t>(M), k);

    const systolic::SimResult sim = systolic::simulate_tile(a, w, costs);
    if (sim.stall_cycles != 0) {
      return proptest::fail("uniform cost-", k, " tile reported ",
                            sim.stall_cycles, " stall cycles");
    }
    return proptest::pass();
  });
}

}  // namespace
}  // namespace drift
